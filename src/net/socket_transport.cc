#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "net/frame.h"
#include "obs/metrics.h"
#include "obs/run_meta.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace moc::net {

namespace {

/** Peer id of a connection that has not completed kHello yet. */
constexpr PeerId kUnknownPeer = 0xFFFFFFFFu;

/** Reader poll granularity: how often a blocked reader rechecks stop flags. */
constexpr int kPollMs = 20;

obs::Counter&
NetCounter(const char* name) {
    return obs::MetricsRegistry::Instance().GetCounter(name);
}

/** Blocking full-buffer send; survives partial writes and EINTR. */
bool
SendAll(int fd, const std::uint8_t* data, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n =
            ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;  // EPIPE/ECONNRESET: the reader will see EOF
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

SocketTransport::SocketTransport(PeerId self, const SocketOptions& options)
    : self_(self), options_(options), monitor_(options.heartbeat) {}

std::unique_ptr<SocketTransport>
SocketTransport::Listen(std::uint16_t port, PeerId self,
                        const SocketOptions& options) {
    std::unique_ptr<SocketTransport> t(new SocketTransport(self, options));
    t->listener_ = true;
    t->StartListener(port);
    t->heartbeat_thread_ = std::thread([p = t.get()] { p->HeartbeatLoop(); });
    return t;
}

std::unique_ptr<SocketTransport>
SocketTransport::Connect(const std::string& host, std::uint16_t port,
                         PeerId self, const SocketOptions& options) {
    static obs::Counter& reconnects = NetCounter("net.reconnects");

    std::unique_ptr<SocketTransport> t(new SocketTransport(self, options));
    const CallPolicy& retry = options.connect_retry;
    Rng rng(retry.seed ^ port);
    const WallClock clock;
    const Seconds start = clock.Now();
    int fd = -1;
    for (std::size_t attempt = 0;; ++attempt) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd >= 0) {
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_port = htons(port);
            if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
                CloseFd(fd);
                throw std::runtime_error("bad transport host '" + host + "'");
            }
            if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0) {
                break;
            }
            CloseFd(fd);
            fd = -1;
        }
        const bool budget_left =
            attempt + 1 < retry.max_attempts &&
            (retry.op_deadline_s <= 0.0 ||
             clock.Now() - start < retry.op_deadline_s);
        if (!budget_left) {
            throw std::runtime_error("transport connect to " + host +
                                     " failed: " +
                                     std::string(std::strerror(errno)));
        }
        Seconds wait = retry.initial_timeout_s;
        for (std::size_t i = 0; i < attempt; ++i) {
            wait *= retry.backoff_multiplier;
        }
        wait = std::min(wait, retry.max_timeout_s);
        if (retry.jitter > 0.0) {
            wait *= rng.Uniform(1.0 - retry.jitter, 1.0 + retry.jitter);
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
        if (attempt > 0) {
            reconnects.Add();
        }
    }

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->peer = kCoordinatorPeer;
    {
        std::lock_guard<std::mutex> lock(t->conn_mu_);
        t->connections_[kCoordinatorPeer] = conn;
    }
    conn->reader = std::thread(
        [p = t.get(), conn] { p->ReaderLoop(conn); });

    // Introduce ourselves, then wait for the kWelcome that assigns our
    // session epoch. The welcome is processed by the reader thread.
    t->SendOn(conn, MsgType::kHello, {}, {});
    const Seconds handshake_deadline =
        clock.Now() + std::max(retry.op_deadline_s, 1.0);
    while (t->session_epoch_.load() == 0) {
        if (clock.Now() > handshake_deadline || conn->closed.load()) {
            t->Close();
            throw std::runtime_error("transport handshake with " + host +
                                     " timed out");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    t->monitor_.Register(kCoordinatorPeer, clock.Now());
    // Align clocks while the connection is idle: a short burst of probes
    // right after the handshake seeds the min-RTT filter before application
    // traffic adds queueing noise; heartbeats keep it fresh afterwards.
    for (int i = 0; i < 3; ++i) {
        t->SendPing(conn);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const Seconds align_deadline = clock.Now() + 0.25;
    while (!t->offset_estimator_.Estimate() && !conn->closed.load() &&
           clock.Now() < align_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    t->heartbeat_thread_ = std::thread([p = t.get()] { p->HeartbeatLoop(); });
    return t;
}

SocketTransport::~SocketTransport() {
    Close();
}

void
SocketTransport::StartListener(std::uint16_t port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw std::runtime_error("transport socket() failed");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        CloseFd(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("transport bind/listen failed: " +
                                 std::string(std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void
SocketTransport::AcceptLoop() {
    while (running_.load()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, kPollMs);
        if (ready <= 0) {
            continue;
        }
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->peer = kUnknownPeer;
        {
            std::lock_guard<std::mutex> lock(conn_mu_);
            if (!running_.load()) {
                CloseFd(fd);
                return;
            }
            pending_.push_back(conn);
        }
        conn->reader =
            std::thread([this, conn] { ReaderLoop(conn); });
    }
}

void
SocketTransport::ReaderLoop(std::shared_ptr<Connection> conn) {
    static obs::Counter& received = NetCounter("net.frames_received");
    static obs::Counter& bytes_received = NetCounter("net.bytes_received");
    static obs::Counter& crc_rejected = NetCounter("net.crc_rejected");
    static obs::Counter& resyncs = NetCounter("net.resyncs");
    static obs::Counter& stale = NetCounter("net.stale_frames");

    FrameDecoder decoder;
    FrameDecoder::Stats last{};
    std::uint8_t buf[64 * 1024];
    bool eof = false;
    while (running_.load() && !conn->closed.load() && !eof) {
        pollfd pfd{conn->fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, kPollMs);
        if (ready <= 0) {
            continue;
        }
        const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
        if (n == 0 || (n < 0 && errno != EINTR)) {
            eof = true;  // a SIGKILL'd peer lands here: the kernel closes
        } else if (n > 0) {
            bytes_received.Add(static_cast<std::uint64_t>(n));
            decoder.Feed(buf, static_cast<std::size_t>(n));
        }
        while (auto frame = decoder.Next()) {
            received.Add();
            const Seconds now = clock_.Now();
            if (conn->peer == kUnknownPeer) {
                // Listener side: the first frame must introduce the peer.
                if (frame->type != MsgType::kHello) {
                    continue;
                }
                AdoptConnection(conn, frame->src_peer);
                continue;
            }
            if (listener_) {
                if (!epochs_.Accept(conn->peer, frame->epoch)) {
                    stale.Add();
                    continue;
                }
            } else if (frame->type == MsgType::kWelcome) {
                conn->epoch = frame->epoch;
                session_epoch_.store(frame->epoch);
                continue;
            } else if (conn->epoch != 0 && frame->epoch != conn->epoch) {
                stale.Add();
                continue;
            }
            monitor_.Heard(conn->peer, now);
            if (frame->type == MsgType::kHeartbeat) {
                continue;  // consumed by liveness, never surfaced
            }
            if (frame->type == MsgType::kTimePing) {
                // Clock probe: echo t0 back with our receive/reply stamps.
                // Never surfaced to Recv; a garbled probe gets no reply.
                const auto t1 =
                    static_cast<std::int64_t>(obs::Tracer::NowNs());
                std::int64_t t0 = 0;
                try {
                    PayloadReader probe(frame->payload);
                    t0 = probe.I64();
                } catch (const std::exception&) {
                    continue;
                }
                PayloadWriter pong;
                pong.I64(t0);
                pong.I64(t1);
                pong.I64(static_cast<std::int64_t>(obs::Tracer::NowNs()));
                SendOn(conn, MsgType::kTimePong, pong.Take(), {});
                continue;
            }
            if (frame->type == MsgType::kTimePong) {
                static obs::Counter& rejects =
                    NetCounter("net.clock.rejected");
                ClockSample sample;
                sample.t3 = static_cast<std::int64_t>(obs::Tracer::NowNs());
                try {
                    PayloadReader pong(frame->payload);
                    sample.t0 = pong.I64();
                    sample.t1 = pong.I64();
                    sample.t2 = pong.I64();
                } catch (const std::exception&) {
                    rejects.Add();
                    continue;
                }
                const std::uint64_t before_rejected =
                    offset_estimator_.rejected();
                const ClockEstimate est = offset_estimator_.Add(sample);
                if (offset_estimator_.rejected() != before_rejected) {
                    rejects.Add();
                    continue;
                }
                static obs::Gauge& offset_gauge =
                    obs::MetricsRegistry::Instance().GetGauge(
                        "net.clock.offset_ns");
                static obs::Gauge& rtt_gauge =
                    obs::MetricsRegistry::Instance().GetGauge(
                        "net.clock.rtt_ns");
                offset_gauge.Set(static_cast<double>(est.offset_ns));
                rtt_gauge.Set(static_cast<double>(est.rtt_ns));
                // Exporters stamp this into every artifact (run_meta.h),
                // which is what lets the merge rebase this process's
                // timeline onto the coordinator's.
                obs::SetClusterClockOffsetNs(est.offset_ns);
                continue;
            }
            if (frame->type == MsgType::kGoodbye) {
                // Orderly close announcement: retire the connection now so
                // the EOF that follows is a farewell, not a death.
                {
                    std::lock_guard<std::mutex> lock(conn_mu_);
                    const auto it = connections_.find(conn->peer);
                    if (it != connections_.end() && it->second == conn) {
                        connections_.erase(it);
                        retired_.push_back(conn);
                    }
                }
                monitor_.Remove(conn->peer);
                conn->closed.store(true);
                continue;
            }
            Message msg;
            msg.type = frame->type;
            msg.from = frame->src_peer;
            msg.epoch = frame->epoch;
            msg.seq = frame->seq;
            msg.ctx = frame->ctx;
            msg.payload = std::move(frame->payload);
            Enqueue(std::move(msg));
        }
        const auto& stats = decoder.stats();
        crc_rejected.Add(stats.crc_rejects - last.crc_rejects);
        resyncs.Add(stats.resyncs - last.resyncs);
        last = stats;
    }
    if (eof && !conn->closed.load() && running_.load() &&
        conn->peer != kUnknownPeer && FindConnection(conn->peer) == conn) {
        DeclareDead(conn->peer, "eof", monitor_.SilentFor(conn->peer,
                                                          clock_.Now()));
    }
}

void
SocketTransport::HeartbeatLoop() {
    static obs::Counter& beats = NetCounter("net.heartbeats_sent");
    const Seconds interval = options_.heartbeat.interval_s;
    while (running_.load()) {
        std::this_thread::sleep_for(std::chrono::duration<double>(interval));
        if (!running_.load()) {
            return;
        }
        std::vector<std::shared_ptr<Connection>> conns;
        {
            std::lock_guard<std::mutex> lock(conn_mu_);
            for (const auto& [peer, conn] : connections_) {
                conns.push_back(conn);
            }
        }
        for (const auto& conn : conns) {
            if (!conn->closed.load() &&
                SendOn(conn, MsgType::kHeartbeat, {}, {})) {
                beats.Add();
            }
            if (!listener_ && !conn->closed.load()) {
                // Piggyback a clock probe on the heartbeat cadence so the
                // offset estimate tracks drift for the connection's life.
                SendPing(conn);
            }
        }
        const Seconds now = clock_.Now();
        for (const PeerId peer : monitor_.Expired(now)) {
            // Silent past miss_limit intervals: SIGSTOP'd, partitioned, or
            // wedged. The socket may still be open — declare death anyway.
            DeclareDead(peer, "heartbeat_timeout",
                        monitor_.SilentFor(peer, now));
        }
    }
}

void
SocketTransport::AdoptConnection(const std::shared_ptr<Connection>& conn,
                                 PeerId peer) {
    static obs::Counter& reconnects = NetCounter("net.reconnects");
    std::shared_ptr<Connection> old;
    std::uint32_t epoch = 0;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        epoch = epochs_.Admit(peer);
        conn->peer = peer;
        conn->epoch = epoch;
        auto it = connections_.find(peer);
        if (it != connections_.end()) {
            old = it->second;
            retired_.push_back(old);
            reconnects.Add();
        }
        connections_[peer] = conn;
        for (auto p = pending_.begin(); p != pending_.end(); ++p) {
            if (*p == conn) {
                pending_.erase(p);
                break;
            }
        }
    }
    if (old) {
        // The superseded session's socket dies here; frames it already put
        // on the wire fail the epoch gate.
        old->closed.store(true);
        ::shutdown(old->fd, SHUT_RDWR);
    }
    monitor_.Register(peer, clock_.Now());
    SendOn(conn, MsgType::kWelcome, {}, {});
    recv_cv_.notify_all();  // wake WaitForPeers
}

void
SocketTransport::DeclareDead(PeerId peer, const char* cause,
                             Seconds silent_s) {
    std::shared_ptr<Connection> conn;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        const auto it = connections_.find(peer);
        if (it == connections_.end()) {
            return;  // already buried (EOF raced heartbeat timeout)
        }
        conn = it->second;
        connections_.erase(it);
        retired_.push_back(conn);
    }
    conn->closed.store(true);
    ::shutdown(conn->fd, SHUT_RDWR);
    JournalPeerDeath(peer, conn->epoch, cause, silent_s,
                     options_.heartbeat.DeathTimeout());
    MOC_WARN << "transport: peer " << peer << " declared dead (" << cause
             << ", silent " << silent_s << "s)";
    Message death;
    death.type = MsgType::kPeerDeath;
    death.from = peer;
    death.epoch = conn->epoch;
    Enqueue(std::move(death));
}

void
SocketTransport::SendPing(const std::shared_ptr<Connection>& conn) {
    static obs::Counter& pings = NetCounter("net.clock.pings");
    PayloadWriter probe;
    probe.I64(static_cast<std::int64_t>(obs::Tracer::NowNs()));
    if (SendOn(conn, MsgType::kTimePing, probe.Take(), {})) {
        pings.Add();
    }
}

void
SocketTransport::Enqueue(Message message) {
    static obs::Counter& drops = NetCounter("net.queue_drops");
    {
        std::lock_guard<std::mutex> lock(recv_mu_);
        if (recv_queue_.size() >= options_.queue_capacity) {
            drops.Add();
            if (message.type == MsgType::kTelemetry) {
                // Telemetry is declared shed-first: its loss is routine
                // backpressure, surfaced on its own counter so the report
                // can distinguish it from dropped application frames.
                static obs::Counter& shed =
                    obs::MetricsRegistry::Instance().GetCounter(
                        "obs.telemetry.dropped");
                shed.Add();
            }
            return;
        }
        recv_queue_.push_back(std::move(message));
    }
    recv_cv_.notify_all();
}

bool
SocketTransport::SendOn(const std::shared_ptr<Connection>& conn, MsgType type,
                        Blob payload, const obs::TraceContext& ctx) {
    static obs::Counter& sent = NetCounter("net.frames_sent");
    static obs::Counter& bytes_sent = NetCounter("net.bytes_sent");
    Frame frame;
    frame.type = type;
    frame.src_peer = self_;
    frame.epoch = conn->epoch;
    frame.seq = next_seq_.fetch_add(1);
    frame.ctx = ctx;
    frame.payload = std::move(payload);
    const Blob wire = EncodeFrame(frame);
    std::lock_guard<std::mutex> lock(conn->send_mu);
    if (conn->closed.load()) {
        return false;
    }
    if (!SendAll(conn->fd, wire.data(), wire.size())) {
        return false;
    }
    sent.Add();
    bytes_sent.Add(wire.size());
    return true;
}

std::uint32_t
SocketTransport::epoch() const {
    return session_epoch_.load();
}

bool
SocketTransport::Send(PeerId to, MsgType type, Blob payload,
                      const obs::TraceContext& ctx) {
    const auto conn = FindConnection(to);
    if (!conn || conn->closed.load()) {
        return false;
    }
    return SendOn(conn, type, std::move(payload), ctx);
}

std::optional<Message>
SocketTransport::Recv(Seconds timeout_s) {
    std::unique_lock<std::mutex> lock(recv_mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(timeout_s, 0.0)));
    while (recv_queue_.empty() && running_.load()) {
        if (recv_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
            recv_queue_.empty()) {
            return std::nullopt;
        }
    }
    if (recv_queue_.empty()) {
        return std::nullopt;
    }
    Message msg = std::move(recv_queue_.front());
    recv_queue_.pop_front();
    return msg;
}

void
SocketTransport::Requeue(Message message) {
    {
        std::lock_guard<std::mutex> lock(recv_mu_);
        recv_queue_.push_front(std::move(message));
    }
    recv_cv_.notify_all();
}

std::vector<PeerId>
SocketTransport::Peers() const {
    std::lock_guard<std::mutex> lock(conn_mu_);
    std::vector<PeerId> peers;
    for (const auto& [peer, conn] : connections_) {
        if (!conn->closed.load()) {
            peers.push_back(peer);
        }
    }
    return peers;
}

bool
SocketTransport::Alive(PeerId peer) const {
    const auto conn = FindConnection(peer);
    return conn != nullptr && !conn->closed.load();
}

bool
SocketTransport::WaitForPeers(std::size_t n, Seconds timeout_s) {
    const Seconds deadline = clock_.Now() + timeout_s;
    while (clock_.Now() < deadline) {
        {
            std::lock_guard<std::mutex> lock(conn_mu_);
            if (connections_.size() >= n) {
                return true;
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    return connections_.size() >= n;
}

void
SocketTransport::Close() {
    if (!running_.exchange(false)) {
        return;
    }
    recv_cv_.notify_all();  // wake blocked Recv callers promptly
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
    }
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (const auto& [peer, conn] : connections_) {
            conns.push_back(conn);
        }
        connections_.clear();
        conns.insert(conns.end(), pending_.begin(), pending_.end());
        pending_.clear();
        conns.insert(conns.end(), retired_.begin(), retired_.end());
        retired_.clear();
    }
    for (const auto& conn : conns) {
        conn->closed.store(true);
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    if (heartbeat_thread_.joinable()) {
        heartbeat_thread_.join();
    }
    for (const auto& conn : conns) {
        if (conn->reader.joinable()) {
            conn->reader.join();
        }
        CloseFd(conn->fd);
    }
    if (listen_fd_ >= 0) {
        CloseFd(listen_fd_);
        listen_fd_ = -1;
    }
    recv_cv_.notify_all();
}

std::shared_ptr<SocketTransport::Connection>
SocketTransport::FindConnection(PeerId peer) const {
    std::lock_guard<std::mutex> lock(conn_mu_);
    const auto it = connections_.find(peer);
    return it == connections_.end() ? nullptr : it->second;
}

void
SocketTransport::CloseFd(int fd) {
    if (fd >= 0) {
        ::close(fd);
    }
}

}  // namespace moc::net
