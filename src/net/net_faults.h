#ifndef MOC_NET_NET_FAULTS_H_
#define MOC_NET_NET_FAULTS_H_

/**
 * @file
 * Seeded message-level fault injection for the transport layer, the
 * network sibling of storage/faulty_store.h: a `FaultyTransport` wraps any
 * Transport and drops, delays, duplicates, or reorders frames on Send
 * according to a deterministic per-seed coin stream.
 *
 * The profile is probabilistic but the stream is seeded, so a failing test
 * or gauntlet run replays exactly from its seed — the same reproducibility
 * contract as StorageFaultProfile. Heartbeats pass through un-faulted by
 * default (`spare_heartbeats`) so liveness tests can perturb data traffic
 * without also amputating the protocol under test.
 */

#include <mutex>
#include <optional>

#include "net/transport.h"
#include "util/rng.h"

namespace moc::net {

/** Per-send fault probabilities; disjoint draws in the order listed. */
struct NetFaultProfile {
    /** Probability a frame is silently dropped. */
    double drop = 0.0;
    /** Probability a frame is sent twice. */
    double duplicate = 0.0;
    /** Probability a frame is held back and sent after the next one. */
    double reorder = 0.0;
    /** Probability a frame is delayed by delay_s before sending. */
    double delay = 0.0;
    /** Sleep applied to delayed frames. */
    Seconds delay_s = 0.01;
    /** Seed of the fault coin stream. */
    std::uint64_t seed = 0x5EEDULL;
    /** Leave kHeartbeat frames un-faulted (keep liveness honest). */
    bool spare_heartbeats = true;
};

/**
 * Transport decorator applying NetFaultProfile on the send path. Receive
 * passes through untouched. Thread-safe to the same degree as the inner
 * transport (the coin stream and reorder slot are mutex-protected).
 */
class FaultyTransport final : public Transport {
  public:
    FaultyTransport(Transport& inner, const NetFaultProfile& profile);

    PeerId self() const override { return inner_.self(); }
    std::uint32_t epoch() const override { return inner_.epoch(); }
    bool Send(PeerId to, MsgType type, Blob payload,
              const obs::TraceContext& ctx = {}) override;
    std::optional<Message> Recv(Seconds timeout_s) override;
    void Requeue(Message message) override { inner_.Requeue(std::move(message)); }
    std::vector<PeerId> Peers() const override { return inner_.Peers(); }
    bool Alive(PeerId peer) const override { return inner_.Alive(peer); }
    void Close() override;

    /** Frames affected so far, per fault class. */
    struct Stats {
        std::uint64_t dropped = 0;
        std::uint64_t duplicated = 0;
        std::uint64_t reordered = 0;
        std::uint64_t delayed = 0;
    };
    Stats stats() const;

  private:
    struct Held {
        PeerId to;
        MsgType type;
        Blob payload;
        obs::TraceContext ctx;
    };

    Transport& inner_;
    NetFaultProfile profile_;
    mutable std::mutex mu_;
    Rng rng_;
    /** The frame held back by a pending reorder, if any. */
    std::optional<Held> held_;
    Stats stats_;
};

}  // namespace moc::net

#endif  // MOC_NET_NET_FAULTS_H_
