#include "net/transport.h"

#include <algorithm>
#include <sstream>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"

namespace moc::net {

namespace {

/** Jittered wait for attempt @p attempt (0-based), clamped to the cap. */
Seconds
AttemptTimeout(const CallPolicy& policy, std::size_t attempt, Rng& rng) {
    Seconds wait = policy.initial_timeout_s;
    for (std::size_t i = 0; i < attempt; ++i) {
        wait *= policy.backoff_multiplier;
    }
    wait = std::min(wait, policy.max_timeout_s);
    if (policy.jitter > 0.0) {
        wait *= rng.Uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
    }
    return std::max(wait, 1e-6);
}

}  // namespace

std::optional<Message>
Call(Transport& transport, PeerId to, MsgType type, Blob payload,
     MsgType reply_type, const CallPolicy& policy,
     const obs::TraceContext& ctx) {
    MOC_CHECK_ARG(policy.max_attempts >= 1, "call needs >= 1 attempt");
    static obs::Counter& retries =
        obs::MetricsRegistry::Instance().GetCounter("net.call.retries");
    static obs::Counter& timeouts =
        obs::MetricsRegistry::Instance().GetCounter("net.call.timeouts");

    // Per-call jitter stream: deterministic given the policy seed and the
    // request identity, independent across concurrent callers.
    Rng rng(policy.seed ^ (static_cast<std::uint64_t>(to) << 32) ^
            ctx.iteration);
    const WallClock clock;
    const Seconds start = clock.Now();
    std::vector<Message> preserved;

    auto restore = [&transport, &preserved]() {
        // Requeue pushes to the front, so walk backwards to restore order.
        for (auto it = preserved.rbegin(); it != preserved.rend(); ++it) {
            transport.Requeue(std::move(*it));
        }
    };

    for (std::size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
        if (attempt > 0) {
            retries.Add();
        }
        transport.Send(to, type, payload, ctx);
        Seconds wait = AttemptTimeout(policy, attempt, rng);
        Seconds deadline = clock.Now() + wait;
        if (policy.op_deadline_s > 0.0) {
            deadline = std::min(deadline, start + policy.op_deadline_s);
        }
        while (true) {
            const Seconds remain = deadline - clock.Now();
            if (remain <= 0.0) {
                break;  // this attempt timed out; maybe resend
            }
            auto msg = transport.Recv(remain);
            if (!msg) {
                break;
            }
            if (msg->type == reply_type && msg->from == to) {
                restore();
                return msg;
            }
            if (msg->type == MsgType::kPeerDeath && msg->from == to) {
                // The peer we are calling was declared dead: retrying is
                // pointless, so surface the death to the caller instead.
                restore();
                return msg;
            }
            preserved.push_back(std::move(*msg));
        }
        if (policy.op_deadline_s > 0.0 &&
            clock.Now() - start >= policy.op_deadline_s) {
            break;
        }
        if (!transport.Alive(to)) {
            break;
        }
    }
    timeouts.Add();
    restore();
    return std::nullopt;
}

void
JournalPeerDeath(PeerId peer, std::uint32_t epoch, const char* cause,
                 Seconds silent_s, Seconds timeout_s) {
    static obs::Counter& deaths =
        obs::MetricsRegistry::Instance().GetCounter("net.peer_deaths");
    deaths.Add();
    obs::JournalEvent event;
    event.kind = obs::EventKind::kPeerDeath;
    if (peer != kCoordinatorPeer) {
        event.scope = static_cast<std::int64_t>(peer);
    }
    std::ostringstream detail;
    detail << "peer=" << peer << " epoch=" << epoch << " cause=" << cause
           << " silent_s=" << silent_s << " timeout_s=" << timeout_s;
    event.detail = detail.str();
    obs::EventJournal::Instance().Append(std::move(event));
}

}  // namespace moc::net
