#include "net/inproc_transport.h"

#include <chrono>

#include "obs/metrics.h"
#include "util/logging.h"

namespace moc::net {

namespace {

obs::Counter&
NetCounter(const char* name) {
    return obs::MetricsRegistry::Instance().GetCounter(name);
}

}  // namespace

InprocHub::InprocHub(std::size_t queue_capacity) : capacity_(queue_capacity) {
    MOC_CHECK_ARG(queue_capacity >= 1, "hub queue capacity must be >= 1");
}

std::uint32_t
InprocHub::Attach(PeerId peer) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& box = mailboxes_[peer];
    if (!box) {
        box = std::make_shared<Mailbox>();
    }
    box->open = true;
    return epochs_.Admit(peer);
}

void
InprocHub::Detach(PeerId peer, bool orderly) {
    std::shared_ptr<Mailbox> box;
    std::vector<std::shared_ptr<Mailbox>> others;
    std::uint32_t epoch = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = mailboxes_.find(peer);
        if (it == mailboxes_.end() || !it->second->open) {
            return;
        }
        box = it->second;
        box->open = false;
        epoch = epochs_.Current(peer);
        if (!orderly) {
            for (const auto& [other, other_box] : mailboxes_) {
                if (other != peer && other_box->open) {
                    others.push_back(other_box);
                }
            }
        }
    }
    box->cv.notify_all();
    if (orderly) {
        return;
    }
    JournalPeerDeath(peer, epoch, "detach", 0.0, 0.0);
    Message death;
    death.type = MsgType::kPeerDeath;
    death.from = peer;
    death.epoch = epoch;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& other_box : others) {
        other_box->queue.push_back(death);
        other_box->cv.notify_all();
    }
}

bool
InprocHub::Route(PeerId from, std::uint32_t epoch, PeerId to,
                 const Blob& wire) {
    static obs::Counter& sent = NetCounter("net.frames_sent");
    static obs::Counter& bytes_sent = NetCounter("net.bytes_sent");
    static obs::Counter& received = NetCounter("net.frames_received");
    static obs::Counter& stale = NetCounter("net.stale_frames");
    static obs::Counter& drops = NetCounter("net.queue_drops");

    // Decode through the real wire codec so in-process traffic exercises
    // the exact same framing and CRC path as TCP traffic.
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    auto frame = decoder.Next();
    if (!frame) {
        return false;
    }
    sent.Add();
    bytes_sent.Add(wire.size());

    std::shared_ptr<Mailbox> box;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!epochs_.Accept(from, epoch)) {
            stale.Add();
            return false;
        }
        const auto it = mailboxes_.find(to);
        if (it == mailboxes_.end() || !it->second->open) {
            return false;
        }
        box = it->second;
        if (box->queue.size() >= capacity_) {
            drops.Add();
            return false;
        }
        Message msg;
        msg.type = frame->type;
        msg.from = frame->src_peer;
        msg.epoch = frame->epoch;
        msg.seq = frame->seq;
        msg.ctx = frame->ctx;
        msg.payload = std::move(frame->payload);
        box->queue.push_back(std::move(msg));
        received.Add();
    }
    box->cv.notify_all();
    return true;
}

std::optional<Message>
InprocHub::Wait(PeerId peer, Seconds timeout_s) {
    std::shared_ptr<Mailbox> box;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = mailboxes_.find(peer);
        if (it == mailboxes_.end()) {
            return std::nullopt;
        }
        box = it->second;
    }
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(timeout_s, 0.0)));
    while (box->queue.empty() && box->open) {
        if (box->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
            box->queue.empty()) {
            return std::nullopt;
        }
    }
    if (box->queue.empty()) {
        return std::nullopt;  // closed
    }
    Message msg = std::move(box->queue.front());
    box->queue.pop_front();
    return msg;
}

void
InprocHub::Requeue(PeerId peer, Message message) {
    std::shared_ptr<Mailbox> box;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = mailboxes_.find(peer);
        if (it == mailboxes_.end()) {
            return;
        }
        box = it->second;
        box->queue.push_front(std::move(message));
    }
    box->cv.notify_all();
}

std::vector<PeerId>
InprocHub::PeersExcept(PeerId self) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PeerId> peers;
    for (const auto& [peer, box] : mailboxes_) {
        if (peer != self && box->open) {
            peers.push_back(peer);
        }
    }
    return peers;
}

bool
InprocHub::Attached(PeerId peer) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = mailboxes_.find(peer);
    return it != mailboxes_.end() && it->second->open;
}

InprocTransport::InprocTransport(InprocHub& hub, PeerId self)
    : hub_(hub), self_(self), epoch_(hub.Attach(self)) {}

InprocTransport::~InprocTransport() {
    Leave(/*orderly=*/true);
}

bool
InprocTransport::Send(PeerId to, MsgType type, Blob payload,
                      const obs::TraceContext& ctx) {
    if (closed_) {
        return false;
    }
    Frame frame;
    frame.type = type;
    frame.src_peer = self_;
    frame.epoch = epoch_;
    frame.seq = next_seq_++;
    frame.ctx = ctx;
    frame.payload = std::move(payload);
    return hub_.Route(self_, epoch_, to, EncodeFrame(frame));
}

std::optional<Message>
InprocTransport::Recv(Seconds timeout_s) {
    if (closed_) {
        return std::nullopt;
    }
    return hub_.Wait(self_, timeout_s);
}

void
InprocTransport::Requeue(Message message) {
    hub_.Requeue(self_, std::move(message));
}

std::vector<PeerId>
InprocTransport::Peers() const {
    return hub_.PeersExcept(self_);
}

bool
InprocTransport::Alive(PeerId peer) const {
    return hub_.Attached(peer);
}

void
InprocTransport::Close() {
    Leave(/*orderly=*/false);
}

void
InprocTransport::CloseOrderly() {
    Leave(/*orderly=*/true);
}

void
InprocTransport::Leave(bool orderly) {
    if (closed_) {
        return;
    }
    closed_ = true;
    // Only the endpoint that still owns the session tears the mailbox
    // down; a superseded endpoint (same peer id rejoined with a newer
    // epoch) must not kill its successor's session.
    if (hub_.epochs().Current(self_) == epoch_) {
        hub_.Detach(self_, orderly);
    }
}

}  // namespace moc::net
