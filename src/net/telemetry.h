#ifndef MOC_NET_TELEMETRY_H_
#define MOC_NET_TELEMETRY_H_

/**
 * @file
 * Live telemetry over the transport: the wire codec for
 * obs::TelemetrySample and the background publisher that streams one
 * sample per interval from a rank to the coordinator as kTelemetry frames
 * (docs/TRANSPORT.md).
 *
 * Telemetry must never slow the data path, so every layer *drops* instead
 * of blocking: Send() returning false (mailbox full, queue full, peer
 * gone) just counts `obs.telemetry.dropped` and moves on, and
 * SocketTransport's writer queue sheds kTelemetry frames first. Samples
 * carry cumulative counter readings, not deltas, so a dropped sample
 * costs freshness only — the next one supersedes it with no coalescing
 * bookkeeping.
 *
 * The coordinator decodes each frame with DecodeTelemetry() and feeds
 * obs::ClusterAggregator (obs/cluster_view.h), which maintains the
 * cluster health view and the straggler detector.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "obs/cluster_view.h"

namespace moc::net {

/** Serializes @p sample as a kTelemetry payload. */
Blob EncodeTelemetry(const obs::TelemetrySample& sample);

/**
 * Parses a kTelemetry payload.
 * @throws std::runtime_error on truncation (PayloadReader).
 */
obs::TelemetrySample DecodeTelemetry(const Blob& payload);

/**
 * Background sampler: every interval, snapshots the local metrics
 * registry and the published RankActivity into one TelemetrySample and
 * sends it to the coordinator. Start()/Stop() bracket the thread;
 * PublishNow() forces one synchronous sample (drivers call it at phase
 * edges so transitions reach the aggregator promptly).
 */
class TelemetryPublisher {
  public:
    struct Options {
        /** Destination peer (the coordinator). */
        PeerId coordinator = 0;
        /** This process's rank, stamped into every sample. */
        std::int32_t rank = -1;
        /** Sampling period. */
        Seconds interval_s = 0.05;
        /** Cap on counters carried per sample (bounded frames). */
        std::size_t max_counters = 32;
        /** Counter-name prefixes worth streaming. */
        std::vector<std::string> counter_prefixes = {"ckpt.", "net.",
                                                     "storage."};
    };

    TelemetryPublisher(Transport& transport, Options options);

    /** Stops the thread (idempotent). */
    ~TelemetryPublisher();

    /** Starts the periodic sampler thread (no-op when running). */
    void Start();

    /** Joins the sampler thread; further PublishNow() calls still work. */
    void Stop();

    /**
     * Builds and sends one sample immediately.
     * @return false when the transport shed it (counted, never blocked).
     */
    bool PublishNow();

    /** Samples shed by the transport so far. */
    std::uint64_t dropped() const {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Samples accepted by the transport so far. */
    std::uint64_t published() const {
        return published_.load(std::memory_order_relaxed);
    }

  private:
    /** Snapshot of activity + metrics as one wire-ready sample. */
    obs::TelemetrySample BuildSample() const;

    void Loop();

    Transport& transport_;
    const Options options_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> published_{0};
};

}  // namespace moc::net

#endif  // MOC_NET_TELEMETRY_H_
