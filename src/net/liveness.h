#ifndef MOC_NET_LIVENESS_H_
#define MOC_NET_LIVENESS_H_

/**
 * @file
 * The heartbeat/reconnect state machines of the transport layer, factored
 * out of the socket code so they are deterministic pure logic driven by
 * injected time — the unit- and TSan-testable core of the
 * paranoid-pirate-style liveness protocol (docs/TRANSPORT.md):
 *
 *  - `HeartbeatMonitor` tracks when each peer was last heard from and
 *    declares a peer dead after `miss_limit` heartbeat intervals of
 *    silence. Death is declared exactly once per session; hearing from the
 *    peer again (a reconnect with a fresh epoch) revives it.
 *  - `EpochGate` assigns monotonically increasing session epochs and
 *    admits only frames of the current epoch, so a rank that died, lost
 *    its connection, or was partitioned away cannot ack a stale
 *    generation after it rejoins: its old epoch's frames are rejected.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "util/clock.h"

namespace moc::net {

/** A transport-level peer identity (ranks 0..N-1, coordinator, ...). */
using PeerId = std::uint32_t;

/** Reserved peer id of the cluster coordinator endpoint. */
inline constexpr PeerId kCoordinatorPeer = 0xFFFF0000u;

/** Liveness knobs: a peer is dead after miss_limit * interval_s silence. */
struct HeartbeatOptions {
    /** Beacon period. */
    Seconds interval_s = 0.05;
    /** Consecutive missed intervals before a peer is declared dead. */
    std::size_t miss_limit = 5;

    Seconds DeathTimeout() const {
        return interval_s * static_cast<double>(miss_limit);
    }
};

/**
 * Tracks per-peer last-heard times against a death timeout. Thread-safe.
 */
class HeartbeatMonitor {
  public:
    explicit HeartbeatMonitor(const HeartbeatOptions& options = {});

    /** Starts (or revives) tracking @p peer as alive at @p now. */
    void Register(PeerId peer, Seconds now);

    /** Any frame from @p peer counts as a heartbeat. */
    void Heard(PeerId peer, Seconds now);

    /** Stops tracking @p peer (orderly goodbye; no death declared). */
    void Remove(PeerId peer);

    /**
     * Peers whose silence exceeded the death timeout at @p now. Each death
     * is reported exactly once; a later Register revives the peer.
     */
    std::vector<PeerId> Expired(Seconds now);

    /** True while @p peer is tracked and not declared dead. */
    bool Alive(PeerId peer) const;

    /** Seconds @p peer has been silent at @p now (0 when untracked). */
    Seconds SilentFor(PeerId peer, Seconds now) const;

    const HeartbeatOptions& options() const { return options_; }

  private:
    struct PeerState {
        Seconds last_heard = 0.0;
        bool dead = false;
    };

    HeartbeatOptions options_;
    mutable std::mutex mu_;
    std::map<PeerId, PeerState> peers_;
};

/**
 * Session-epoch admission control. Thread-safe.
 *
 * Every (re)connect of a peer admits a new epoch (strictly increasing per
 * peer); frames carrying any older epoch are rejected. This is what makes
 * rejoin safe: an ack sent before a partition, delivered after the rank
 * reconnected, can no longer be mistaken for progress of the new session.
 */
class EpochGate {
  public:
    /** Opens a new session for @p peer; returns its epoch (1, 2, ...). */
    std::uint32_t Admit(PeerId peer);

    /** True when @p epoch is @p peer's current session. */
    bool Accept(PeerId peer, std::uint32_t epoch);

    /** @p peer's current epoch (0 = never admitted). */
    std::uint32_t Current(PeerId peer) const;

    /** Frames rejected as stale since construction. */
    std::uint64_t stale_rejected() const;

  private:
    mutable std::mutex mu_;
    std::map<PeerId, std::uint32_t> epochs_;
    std::uint64_t stale_rejected_ = 0;
};

}  // namespace moc::net

#endif  // MOC_NET_LIVENESS_H_
