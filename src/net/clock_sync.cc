#include "net/clock_sync.h"

namespace moc::net {

ClockOffsetEstimator::ClockOffsetEstimator(std::size_t window)
    : window_(window == 0 ? 1 : window) {}

ClockEstimate
ClockOffsetEstimator::Add(const ClockSample& sample) {
    std::lock_guard<std::mutex> lock(mu_);
    if (sample.RttNs() < 0) {
        // A reordered pong matched against the wrong ping, or garbled
        // stamps: physically impossible, keep the window clean.
        ++rejected_;
    } else {
        ++accepted_;
        recent_.push_back(sample);
        if (recent_.size() > window_) {
            recent_.pop_front();
        }
    }
    ClockEstimate estimate;
    estimate.samples = accepted_;
    const ClockSample* best = nullptr;
    for (const ClockSample& s : recent_) {
        if (best == nullptr || s.RttNs() < best->RttNs()) {
            best = &s;
        }
    }
    if (best != nullptr) {
        estimate.offset_ns = best->OffsetNs();
        estimate.rtt_ns = best->RttNs();
    }
    return estimate;
}

std::optional<ClockEstimate>
ClockOffsetEstimator::Estimate() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (recent_.empty()) {
        return std::nullopt;
    }
    const ClockSample* best = nullptr;
    for (const ClockSample& s : recent_) {
        if (best == nullptr || s.RttNs() < best->RttNs()) {
            best = &s;
        }
    }
    ClockEstimate estimate;
    estimate.offset_ns = best->OffsetNs();
    estimate.rtt_ns = best->RttNs();
    estimate.samples = accepted_;
    return estimate;
}

std::uint64_t
ClockOffsetEstimator::rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
}

}  // namespace moc::net
