#ifndef MOC_NET_SOCKET_TRANSPORT_H_
#define MOC_NET_SOCKET_TRANSPORT_H_

/**
 * @file
 * The TCP Transport: real inter-process messaging for multi-process
 * cluster runs (examples/cluster_procs via tools/moc_launcher), built on
 * the frame codec (frame.h) and the liveness state machines (liveness.h).
 *
 * Topology is hub-and-spoke: the coordinator `Listen`s, each rank
 * `Connect`s and introduces itself with kHello; the coordinator admits a
 * session epoch (EpochGate) and answers kWelcome carrying that epoch in
 * the frame header. From then on both sides:
 *
 *  - run a reader thread per connection feeding a FrameDecoder — partial
 *    reads and torn frames are handled by the codec, CRC rejects are
 *    dropped and counted (net.crc_rejected);
 *  - exchange kHeartbeat beacons every `heartbeat.interval_s`; a peer
 *    silent for `miss_limit` intervals is declared dead (SIGSTOP'd or
 *    partitioned process), as is a peer whose socket reaches EOF
 *    (SIGKILL'd process). Death is journaled as `peer_death`, counted
 *    (net.peer_deaths), and delivered in-band as a kPeerDeath message;
 *  - reject frames from superseded sessions: when a rank reconnects the
 *    coordinator admits a new epoch, and frames still in flight from the
 *    old connection are dropped (net.stale_frames) — a rejoining rank
 *    cannot ack a stale generation.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "net/clock_sync.h"
#include "net/liveness.h"
#include "net/transport.h"

namespace moc::net {

/** Socket transport knobs. */
struct SocketOptions {
    HeartbeatOptions heartbeat;
    /** Connect-side retry while the listener is not up yet. */
    CallPolicy connect_retry;
    /** Receive-queue capacity; frames beyond it drop (net.queue_drops). */
    std::size_t queue_capacity = 1024;
};

/**
 * TCP implementation of Transport. Construct via Listen (coordinator) or
 * Connect (rank). All public methods are thread-safe.
 */
class SocketTransport final : public Transport {
  public:
    /**
     * Binds 127.0.0.1:@p port (0 = ephemeral; see port()) and accepts
     * peers in the background as @p self.
     */
    static std::unique_ptr<SocketTransport> Listen(
        std::uint16_t port, PeerId self, const SocketOptions& options = {});

    /**
     * Connects to @p host:@p port as @p self, retrying per
     * options.connect_retry, and completes the kHello/kWelcome handshake.
     * @throws std::runtime_error when the handshake cannot be completed.
     */
    static std::unique_ptr<SocketTransport> Connect(
        const std::string& host, std::uint16_t port, PeerId self,
        const SocketOptions& options = {});

    ~SocketTransport() override;

    PeerId self() const override { return self_; }
    std::uint32_t epoch() const override;
    bool Send(PeerId to, MsgType type, Blob payload,
              const obs::TraceContext& ctx = {}) override;
    std::optional<Message> Recv(Seconds timeout_s) override;
    void Requeue(Message message) override;
    std::vector<PeerId> Peers() const override;
    bool Alive(PeerId peer) const override;
    void Close() override;

    /** The locally bound port (listener; meaningful after Listen). */
    std::uint16_t port() const { return port_; }

    /** Blocks up to @p timeout_s until @p n peers completed the handshake. */
    bool WaitForPeers(std::size_t n, Seconds timeout_s);

    /**
     * This endpoint's coordinator-relative clock offset (net/clock_sync.h):
     * probed at handshake, refreshed alongside every heartbeat. nullopt on
     * the listener side (the coordinator *is* the reference clock) and
     * before the first completed exchange.
     */
    std::optional<ClockEstimate> ClockOffset() const {
        return offset_estimator_.Estimate();
    }

  private:
    struct Connection {
        int fd = -1;
        PeerId peer = 0;
        /** The session epoch this connection was admitted under. */
        std::uint32_t epoch = 0;
        std::thread reader;
        std::mutex send_mu;
        std::atomic<bool> closed{false};
    };

    SocketTransport(PeerId self, const SocketOptions& options);

    void StartListener(std::uint16_t port);
    void AcceptLoop();
    void ReaderLoop(std::shared_ptr<Connection> conn);
    void HeartbeatLoop();
    /** Registers @p conn as @p peer's live connection (admitting an epoch
        on the listener side), superseding any previous one. */
    void AdoptConnection(const std::shared_ptr<Connection>& conn, PeerId peer);
    void DeclareDead(PeerId peer, const char* cause, Seconds silent_s);
    /** Fires one kTimePing probe stamped with the local clock. */
    void SendPing(const std::shared_ptr<Connection>& conn);
    void Enqueue(Message message);
    bool SendOn(const std::shared_ptr<Connection>& conn, MsgType type,
                Blob payload, const obs::TraceContext& ctx);
    std::shared_ptr<Connection> FindConnection(PeerId peer) const;
    static void CloseFd(int fd);

    const PeerId self_;
    const SocketOptions options_;
    WallClock clock_;

    std::atomic<bool> running_{true};
    bool listener_ = false;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread accept_thread_;
    std::thread heartbeat_thread_;

    mutable std::mutex conn_mu_;
    std::map<PeerId, std::shared_ptr<Connection>> connections_;
    /** Connections accepted but not yet past kHello. */
    std::vector<std::shared_ptr<Connection>> pending_;
    /** Superseded/dead connections kept for reader-thread joining. */
    std::vector<std::shared_ptr<Connection>> retired_;
    HeartbeatMonitor monitor_;
    EpochGate epochs_;
    /** The epoch the remote listener assigned us (connect side). */
    std::atomic<std::uint32_t> session_epoch_{0};
    std::atomic<std::uint64_t> next_seq_{0};
    /** Coordinator-relative offset, fed by kTimePong frames. */
    ClockOffsetEstimator offset_estimator_;

    mutable std::mutex recv_mu_;
    std::condition_variable recv_cv_;
    std::deque<Message> recv_queue_;
};

}  // namespace moc::net

#endif  // MOC_NET_SOCKET_TRANSPORT_H_
