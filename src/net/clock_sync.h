#ifndef MOC_NET_CLOCK_SYNC_H_
#define MOC_NET_CLOCK_SYNC_H_

/**
 * @file
 * Cristian-style clock alignment for the cluster observability plane
 * (docs/OBSERVABILITY.md, "Cluster plane"). Every process stamps its spans
 * and journal events with its own `steady_clock` (obs/trace.h), which is
 * meaningless across processes; to merge per-role flight recordings onto
 * one cluster timeline each rank estimates its offset against the
 * coordinator's clock with a ping/pong exchange:
 *
 *   rank                    coordinator
 *    t0  -- kTimePing  -->   t1 (receive)
 *    t3  <-- kTimePong --    t2 (reply; echoes t0, carries t1 and t2)
 *
 *   rtt    = (t3 - t0) - (t2 - t1)
 *   offset = ((t1 - t0) + (t2 - t3)) / 2       (coordinator - rank)
 *
 * A single sample's error is bounded by the path asymmetry, so the
 * estimator keeps a sliding window of samples and reports the offset from
 * the minimum-RTT sample — the exchange least distorted by queueing. The
 * first samples are taken right after the kHello/kWelcome handshake and
 * refreshed alongside every heartbeat (net/socket_transport.h), so the
 * estimate tracks drift for the life of the connection.
 *
 * All arithmetic is on caller-supplied timestamps: the estimator owns no
 * clock, which is what makes it deterministic under test (seeded
 * FaultyTransport jitter, simulated skew).
 */

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace moc::net {

/** One completed ping/pong exchange, all stamps in nanoseconds. */
struct ClockSample {
    std::int64_t t0 = 0;  ///< requester's clock at ping send
    std::int64_t t1 = 0;  ///< responder's clock at ping receive
    std::int64_t t2 = 0;  ///< responder's clock at pong send
    std::int64_t t3 = 0;  ///< requester's clock at pong receive

    /** Round-trip time minus the responder's turnaround. */
    std::int64_t RttNs() const { return (t3 - t0) - (t2 - t1); }

    /** Responder clock minus requester clock, assuming a symmetric path. */
    std::int64_t OffsetNs() const {
        return ((t1 - t0) + (t2 - t3)) / 2;
    }
};

/** The estimator's current belief. */
struct ClockEstimate {
    /** Responder (coordinator) clock minus local clock, nanoseconds. */
    std::int64_t offset_ns = 0;
    /** RTT of the sample the offset came from (its error bound). */
    std::int64_t rtt_ns = 0;
    /** Samples ingested since construction. */
    std::uint64_t samples = 0;
};

/**
 * Min-RTT-filtered offset estimator over a sliding sample window.
 * Thread-safe: fed from the transport reader thread, read from exporters.
 */
class ClockOffsetEstimator {
  public:
    /** @p window bounds how many recent samples the filter considers, so a
        long-lived connection tracks drift instead of pinning the estimate
        to one lucky exchange from minutes ago. */
    explicit ClockOffsetEstimator(std::size_t window = 32);

    /** Ingests one exchange; samples with negative RTT (reordered or
        damaged stamps) are rejected. @return the updated estimate. */
    ClockEstimate Add(const ClockSample& sample);

    /** Current estimate, or nullopt before the first accepted sample. */
    std::optional<ClockEstimate> Estimate() const;

    /** Samples rejected for a negative RTT. */
    std::uint64_t rejected() const;

  private:
    const std::size_t window_;
    mutable std::mutex mu_;
    std::deque<ClockSample> recent_;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
};

}  // namespace moc::net

#endif  // MOC_NET_CLOCK_SYNC_H_
