#ifndef MOC_STORAGE_STORE_ERROR_H_
#define MOC_STORAGE_STORE_ERROR_H_

/**
 * @file
 * The typed storage-error taxonomy (docs/FAULT_MODEL.md).
 *
 * Every recoverable failure of the persistent checkpoint path is reported
 * as a StoreError so callers can distinguish "retry it" (kTransient) from
 * "the bytes are damaged, fall back to another copy" (kCorrupt) from "the
 * retry budget ran out" (kTimeout). Deriving from std::runtime_error keeps
 * untyped catch sites working.
 */

#include <stdexcept>
#include <string>

namespace moc {

/** Failure classes of a storage operation. */
enum class StoreErrorKind {
    /** The operation failed but retrying may succeed (flaky I/O). */
    kTransient,
    /** The stored bytes are damaged (CRC mismatch, truncation). */
    kCorrupt,
    /** The retry/backoff budget or the per-op deadline was exhausted. */
    kTimeout,
};

/** Stable name of @p kind ("transient", "corrupt", "timeout"). */
const char* StoreErrorKindName(StoreErrorKind kind);

/**
 * A typed storage failure, carrying the failing key.
 */
class StoreError : public std::runtime_error {
  public:
    StoreError(StoreErrorKind kind, std::string key, const std::string& what);

    StoreErrorKind kind() const { return kind_; }

    /** The store key the failing operation addressed (may be empty). */
    const std::string& key() const { return key_; }

  private:
    StoreErrorKind kind_;
    std::string key_;
};

}  // namespace moc

#endif  // MOC_STORAGE_STORE_ERROR_H_
