#include "storage/resilient_store.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace moc {

namespace {

obs::Counter&
StoreCounter(const char* suffix) {
    return obs::MetricsRegistry::Instance().GetCounter(std::string("store.") +
                                                       suffix);
}

// Verification uses CRC-32C: checkpoint blobs embed per-tensor IEEE
// trailers, and a same-polynomial outer CRC is blind to the payload
// (see util/crc32.h).
std::uint32_t
BlobCrc(const Blob& blob) {
    return Crc32c(blob.data(), blob.size());
}

}  // namespace

ResilientStore::ResilientStore(ObjectStore& base, const RetryPolicy& policy,
                               RepairSource repair)
    : base_(base), policy_(policy), repair_(std::move(repair)),
      rng_(policy.seed) {
    MOC_CHECK_ARG(policy.max_attempts >= 1, "max_attempts must be >= 1");
    MOC_CHECK_ARG(policy.initial_backoff_s >= 0.0 && policy.max_backoff_s >= 0.0,
                  "backoff times must be >= 0");
    MOC_CHECK_ARG(policy.backoff_multiplier >= 1.0,
                  "backoff_multiplier must be >= 1");
    MOC_CHECK_ARG(policy.jitter >= 0.0 && policy.jitter <= 1.0,
                  "jitter must be in [0,1]");
}

Seconds
ResilientStore::Now() {
    return static_cast<double>(obs::Tracer::NowNs()) * 1e-9;
}

void
ResilientStore::Backoff(std::size_t attempt) const {
    double delay = policy_.initial_backoff_s;
    for (std::size_t i = 0; i < attempt; ++i) {
        delay *= policy_.backoff_multiplier;
    }
    delay = std::min(delay, static_cast<double>(policy_.max_backoff_s));
    if (policy_.jitter > 0.0) {
        std::lock_guard<std::mutex> lock(rng_mu_);
        delay *= 1.0 + rng_.Uniform(-policy_.jitter, policy_.jitter);
    }
    if (delay > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
}

void
ResilientStore::CheckDeadline(Seconds start, const std::string& key,
                              const char* op) const {
    if (policy_.op_deadline_s > 0.0 && Now() - start > policy_.op_deadline_s) {
        static obs::Counter& timeouts = StoreCounter("timeouts_total");
        timeouts.Add();
        throw StoreError(StoreErrorKind::kTimeout, key,
                         std::string(op) + " deadline exceeded");
    }
}

void
ResilientStore::Put(const std::string& key, Blob blob) {
    const Seconds start = Now();
    const std::uint32_t crc = BlobCrc(blob);
    static obs::Counter& retries = StoreCounter("retries_total");
    static obs::Counter& verify_failures = StoreCounter("put_verify_failures_total");
    std::string last_error = "no attempt made";
    for (std::size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
        if (attempt > 0) {
            retries.Add();
            Backoff(attempt - 1);
        }
        CheckDeadline(start, key, "put");
        try {
            base_.Put(key, blob);  // keep our copy for verify/retry
        } catch (const StoreError& e) {
            if (e.kind() != StoreErrorKind::kTransient) {
                throw;
            }
            last_error = e.what();
            continue;
        }
        if (!policy_.verify_after_write) {
            return;
        }
        std::optional<Blob> readback;
        try {
            readback = base_.Get(key);
        } catch (const StoreError&) {
            readback = std::nullopt;  // unreadable counts as unverified
        } catch (const std::runtime_error&) {
            readback = std::nullopt;  // e.g. FileStore CRC-trailer failures
        }
        if (readback.has_value() && BlobCrc(*readback) == crc) {
            return;
        }
        verify_failures.Add();
        last_error = readback.has_value() ? "read-back CRC mismatch"
                                          : "read-back found no blob";
    }
    static obs::Counter& timeouts = StoreCounter("timeouts_total");
    timeouts.Add();
    throw StoreError(StoreErrorKind::kTimeout, key,
                     "put failed after " + std::to_string(policy_.max_attempts) +
                         " attempts: " + last_error);
}

std::optional<Blob>
ResilientStore::Get(const std::string& key) const {
    const Seconds start = Now();
    static obs::Counter& retries = StoreCounter("retries_total");
    std::string last_error = "no attempt made";
    for (std::size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
        if (attempt > 0) {
            retries.Add();
            Backoff(attempt - 1);
        }
        CheckDeadline(start, key, "get");
        try {
            return base_.Get(key);
        } catch (const StoreError& e) {
            if (e.kind() != StoreErrorKind::kTransient) {
                throw;
            }
            last_error = e.what();
        }
    }
    static obs::Counter& timeouts = StoreCounter("timeouts_total");
    timeouts.Add();
    throw StoreError(StoreErrorKind::kTimeout, key,
                     "get failed after " + std::to_string(policy_.max_attempts) +
                         " attempts: " + last_error);
}

std::optional<Blob>
ResilientStore::GetChecked(const std::string& key,
                           std::uint32_t expected_crc) const {
    const Seconds start = Now();
    static obs::Counter& retries = StoreCounter("retries_total");
    static obs::Counter& corrupt_reads = StoreCounter("corrupt_reads_total");
    static obs::Counter& read_repairs = StoreCounter("read_repairs_total");
    bool saw_damage = false;
    for (std::size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
        if (attempt > 0) {
            retries.Add();
            Backoff(attempt - 1);
        }
        CheckDeadline(start, key, "get");
        std::optional<Blob> blob;
        try {
            blob = base_.Get(key);
        } catch (const StoreError& e) {
            if (e.kind() == StoreErrorKind::kTransient) {
                continue;  // retry; transient failures are not damage
            }
            saw_damage = true;  // kCorrupt from the backend's own CRC layer
            blob = std::nullopt;
        } catch (const std::runtime_error&) {
            saw_damage = true;  // untyped backend corruption report
            blob = std::nullopt;
        }
        if (blob.has_value()) {
            if (BlobCrc(*blob) == expected_crc) {
                return blob;
            }
            corrupt_reads.Add();
            saw_damage = true;
            // A re-read may still succeed: read_corrupt-style faults damage
            // the returned copy, not the stored bytes.
            continue;
        }
        if (!saw_damage) {
            return std::nullopt;  // genuinely absent
        }
        break;  // stored bytes are damaged; retrying cannot help
    }
    // Stored copy unusable: try the replica source (read repair).
    if (repair_ != nullptr) {
        if (auto replica = repair_(key);
            replica.has_value() && BlobCrc(*replica) == expected_crc) {
            read_repairs.Add();
            MOC_WARN << "store: read-repaired " << key << " from a replica";
            try {
                // Put through ourselves: retried and (optionally) verified.
                const_cast<ResilientStore*>(this)->Put(key, *replica);
            } catch (const StoreError&) {
                // Repair write failed; the replica bytes are still good.
            }
            return replica;
        }
    }
    if (saw_damage) {
        throw StoreError(StoreErrorKind::kCorrupt, key,
                         "stored bytes fail CRC verification and no intact "
                         "replica is available");
    }
    throw StoreError(StoreErrorKind::kTimeout, key,
                     "checked get failed after " +
                         std::to_string(policy_.max_attempts) + " attempts");
}

bool
ResilientStore::Contains(const std::string& key) const {
    return base_.Contains(key);
}

void
ResilientStore::Erase(const std::string& key) {
    base_.Erase(key);
}

std::vector<std::string>
ResilientStore::Keys() const {
    return base_.Keys();
}

Bytes
ResilientStore::TotalBytes() const {
    return base_.TotalBytes();
}

std::size_t
ResilientStore::Count() const {
    return base_.Count();
}

}  // namespace moc
