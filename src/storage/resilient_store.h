#ifndef MOC_STORAGE_RESILIENT_STORE_H_
#define MOC_STORAGE_RESILIENT_STORE_H_

/**
 * @file
 * Resilient checkpoint I/O: an ObjectStore wrapper that turns a flaky
 * backend into one with typed, bounded failure behaviour
 * (docs/FAULT_MODEL.md).
 *
 *   - every operation retries transient backend errors under bounded
 *     exponential backoff with seeded jitter, up to a per-op deadline;
 *   - writes are read back and CRC-verified (verify_after_write), so torn,
 *     bit-flipped, and lost writes surface at save time, not recovery time;
 *   - GetChecked verifies reads against the CRC the manifest recorded at
 *     write time and can read-repair from a caller-supplied replica source
 *     (surviving DP/EP memory copies, a versioned twin key).
 *
 * Exhausted retries raise StoreError{kTimeout}; unrepairable damage raises
 * StoreError{kCorrupt}. The wrapper never returns partially-validated
 * bytes.
 */

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "storage/object_store.h"
#include "storage/store_error.h"
#include "util/clock.h"
#include "util/rng.h"

namespace moc {

/** Retry/backoff/deadline knobs for one ResilientStore. */
struct RetryPolicy {
    /** Attempts per operation (>= 1). */
    std::size_t max_attempts = 4;
    /** Backoff before the 2nd attempt; doubles (backoff_multiplier) after. */
    Seconds initial_backoff_s = 1e-4;
    double backoff_multiplier = 2.0;
    Seconds max_backoff_s = 0.1;
    /** Uniform +/- fraction applied to each backoff (0 = none). */
    double jitter = 0.25;
    /** Wall-clock budget per operation, retries included (0 = unlimited). */
    Seconds op_deadline_s = 0.0;
    /** Seed of the jitter stream. */
    std::uint64_t seed = 0x5EEDULL;
    /** Read every Put back and CRC-verify it before reporting success. */
    bool verify_after_write = true;
};

/**
 * Retry/verify wrapper over any ObjectStore. Thread-safe.
 */
class ResilientStore final : public ObjectStore {
  public:
    /**
     * A replica source for read-repair: returns candidate bytes for a key
     * (from a surviving memory snapshot, a versioned twin, ...), or nullopt.
     * GetChecked CRC-verifies the candidate before trusting it.
     */
    using RepairSource =
        std::function<std::optional<Blob>(const std::string& key)>;

    explicit ResilientStore(ObjectStore& base, const RetryPolicy& policy = {},
                            RepairSource repair = nullptr);

    /**
     * Stores @p blob under @p key, retrying transient errors and (when
     * verify_after_write) confirming the stored bytes by CRC read-back.
     * @throws StoreError kTimeout when the retry budget is exhausted.
     */
    void Put(const std::string& key, Blob blob) override;

    /** Get with transient-error retries. No CRC expectation is checked. */
    std::optional<Blob> Get(const std::string& key) const override;

    /**
     * Get verified against @p expected_crc (the manifest's record of what
     * was written). On mismatch, consults the repair source; a CRC-matching
     * replica is written back to the backend (read repair) and returned.
     * @throws StoreError kCorrupt when no intact copy can be produced,
     *         kTimeout when transient retries run out.
     */
    std::optional<Blob> GetChecked(const std::string& key,
                                   std::uint32_t expected_crc) const;

    bool Contains(const std::string& key) const override;
    void Erase(const std::string& key) override;
    std::vector<std::string> Keys() const override;
    Bytes TotalBytes() const override;
    std::size_t Count() const override;

    const RetryPolicy& policy() const { return policy_; }

  private:
    /** Sleeps the backoff for @p attempt (0-based) with seeded jitter. */
    void Backoff(std::size_t attempt) const;

    /** Seconds since an arbitrary epoch, for deadlines. */
    static Seconds Now();

    /** Throws kTimeout if the deadline from @p start has passed. */
    void CheckDeadline(Seconds start, const std::string& key,
                       const char* op) const;

    ObjectStore& base_;
    RetryPolicy policy_;
    RepairSource repair_;
    mutable std::mutex rng_mu_;
    mutable Rng rng_;
};

}  // namespace moc

#endif  // MOC_STORAGE_RESILIENT_STORE_H_
