#ifndef MOC_STORAGE_MEMORY_STORE_H_
#define MOC_STORAGE_MEMORY_STORE_H_

/**
 * @file
 * Per-node CPU-memory object stores with node-failure semantics: the
 * "snapshot" level of the two-level checkpoint hierarchy. A node failure
 * wipes that node's store — exactly the event two-level recovery must
 * tolerate (Section 5.1).
 */

#include <map>
#include <memory>
#include <mutex>

#include "dist/topology.h"
#include "storage/object_store.h"

namespace moc {

/**
 * A thread-safe in-memory key-value store (one node's CPU memory).
 */
class MemoryStore final : public ObjectStore {
  public:
    MemoryStore() = default;

    void Put(const std::string& key, Blob blob) override;
    std::optional<Blob> Get(const std::string& key) const override;
    bool Contains(const std::string& key) const override;
    void Erase(const std::string& key) override;
    std::vector<std::string> Keys() const override;
    Bytes TotalBytes() const override;
    std::size_t Count() const override;

    /** Drops every key (node failure / restart). */
    void Clear();

  private:
    mutable std::mutex mu_;
    std::map<std::string, Blob> data_;
    Bytes total_bytes_ = 0;
};

/**
 * The cluster's CPU memories: one MemoryStore per node, with fail/restore
 * semantics for fault injection.
 */
class NodeMemoryPool {
  public:
    explicit NodeMemoryPool(std::size_t num_nodes);

    std::size_t num_nodes() const { return stores_.size(); }

    /** The store of @p node. */
    MemoryStore& Node(NodeId node);
    const MemoryStore& Node(NodeId node) const;

    /** Simulates a crash of @p node: its memory contents are lost. */
    void FailNode(NodeId node);

    /** True if @p node has been failed and not yet restarted. */
    bool IsFailed(NodeId node) const;

    /** Brings @p node back (with empty memory). */
    void RestartNode(NodeId node);

    /** Sum of memory usage across nodes. */
    Bytes TotalBytes() const;

  private:
    std::vector<std::unique_ptr<MemoryStore>> stores_;
    std::vector<bool> failed_;
};

}  // namespace moc

#endif  // MOC_STORAGE_MEMORY_STORE_H_
