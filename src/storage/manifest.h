#ifndef MOC_STORAGE_MANIFEST_H_
#define MOC_STORAGE_MANIFEST_H_

/**
 * @file
 * The checkpoint manifest: for every checkpointing unit key, the saved
 * versions at each level of the hierarchy (in-memory snapshot vs persistent
 * storage), with their iterations and owning nodes.
 *
 * The memory level keeps one version per holding node — an expert's
 * snapshot is replicated on the owner rank of every EP group — so that node
 * failures invalidate exactly the replicas that died. This metadata makes
 * PEC recovery well-defined: on a fault, the recovery planner consults the
 * manifest to find, per key, the newest version still reachable
 * (Section 5.1 "Recovery").
 *
 * The persist level additionally keeps a bounded *history* of versions per
 * key, each carrying the CRC of the bytes that were written and whether the
 * write was verified (read back and CRC-checked). Versions group into
 * checkpoint *generations* — all shards written at one checkpoint
 * iteration — and a generation becomes an eligible restart target only
 * once it is sealed (MarkCheckpointComplete) and every shard recorded in it
 * verified. Recovery walks eligible generations newest-first and, per key,
 * a verified-version fallback chain, so a corrupt shard degrades the
 * restore instead of killing it (docs/FAULT_MODEL.md).
 *
 * The persist history serializes to JSON (`moc-manifest/1`) so an on-disk
 * checkpoint directory carries its own integrity record for `moc_cli fsck`
 * and cold starts.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dist/topology.h"
#include "util/bytes.h"

namespace moc {

/** The two levels of the checkpoint hierarchy. */
enum class StoreLevel { kMemory, kPersist };

/** One saved version of one key. */
struct KeyVersion {
    /** Training iteration whose state this version captures. */
    std::size_t iteration = 0;
    /** Node whose memory holds it (memory level; 0 for persist). */
    NodeId node = 0;
    Bytes bytes = 0;
};

/** One persisted version of one key, with its integrity record. */
struct PersistVersion {
    std::size_t iteration = 0;
    Bytes bytes = 0;
    /** CRC32 of the serialized shard at write time. */
    std::uint32_t crc = 0;
    /** Write was read back and CRC-matched (or predates verification). */
    bool verified = true;
    /** A later read found the stored bytes damaged beyond repair. */
    bool corrupt = false;
    /**
     * Dedup-by-reference: the shard's content was identical (same size,
     * CRC-32C, and FNV-1a 64) to an already-persisted version, so no bytes
     * were written for this version — the physical blob lives at the
     * referenced iteration instead (docs/FAULT_MODEL.md, "cluster commit
     * protocol").
     */
    std::optional<std::size_t> ref;

    /**
     * Delta encoding: only the chunks that changed since the version at
     * this iteration were persisted, as a delta record under
     * DeltaShardKey(key, iteration). `bytes`/`crc` above still describe the
     * *logical* (reconstructed) blob; `delta_bytes`/`delta_crc` describe
     * the physical record, so both restore and fsck can verify each
     * representation. Mutually exclusive with `ref`.
     */
    std::optional<std::size_t> delta_base;
    Bytes delta_bytes = 0;
    std::uint32_t delta_crc = 0;

    bool is_delta() const { return delta_base.has_value(); }

    /** Iteration whose physical blob backs this version. */
    std::size_t PhysicalIteration() const { return ref.value_or(iteration); }
};

/**
 * Store key of one versioned shard write: "<key>@<iteration>". The cluster
 * persist pipeline writes every shard under its versioned key, so no
 * generation is ever damaged by a latest-wins overwrite from a newer,
 * possibly failing, checkpoint event.
 */
std::string VersionedShardKey(const std::string& key, std::size_t iteration);

/** Summary of one checkpoint generation, for fsck and reports. */
struct GenerationInfo {
    std::size_t iteration = 0;
    /** Shards (persist versions) recorded at this iteration. */
    std::size_t shards = 0;
    std::size_t verified_shards = 0;
    std::size_t corrupt_shards = 0;
    /** MarkCheckpointComplete has sealed this generation. */
    bool sealed = false;
    /** Recovery found the generation unusable as a restart target. */
    bool marked_corrupt = false;
    /**
     * The coordinator abandoned this generation deliberately — a participant
     * died mid-barrier and elastic membership replanned around it. Never a
     * restart target, but also not *torn*: fsck reports it as an
     * acknowledged casualty instead of damage.
     */
    bool aborted = false;
    /** Sealed, not marked corrupt, and every shard verified and intact. */
    bool eligible = false;
};

/**
 * Thread-safe manifest over both checkpoint levels.
 */
class CheckpointManifest {
  public:
    /**
     * Records that @p key was saved at @p level capturing @p iteration.
     * Persist-level saves through this legacy entry point record an
     * unverified-CRC version (crc 0, verified); prefer
     * RecordPersistVersion for checked recovery.
     */
    void RecordSave(StoreLevel level, const std::string& key, std::size_t iteration,
                    NodeId node, Bytes bytes);

    /**
     * Records a persist-level version with its integrity metadata.
     * Same-iteration re-records replace; older iterations panic
     * (checkpoints are monotonic). @p ref records dedup-by-reference: the
     * version's bytes physically live at that older iteration.
     */
    void RecordPersistVersion(const std::string& key, std::size_t iteration,
                              Bytes bytes, std::uint32_t crc, bool verified,
                              std::optional<std::size_t> ref = std::nullopt);

    /**
     * Records a delta-encoded persist version: logical content
     * (@p bytes, @p crc) materialized by applying the record at
     * DeltaShardKey(key, iteration) — physical identity @p delta_bytes /
     * @p delta_crc — on top of the version at @p delta_base.
     */
    void RecordPersistDelta(const std::string& key, std::size_t iteration,
                            Bytes bytes, std::uint32_t crc, bool verified,
                            std::size_t delta_base, Bytes delta_bytes,
                            std::uint32_t delta_crc);

    /** The recorded version of @p key at exactly @p iteration, if any. */
    std::optional<PersistVersion> FindPersistVersion(
        const std::string& key, std::size_t iteration) const;

    /**
     * Freshest reachable version of @p key at @p level, if any. At the
     * memory level this is the newest among surviving node replicas; at
     * the persist level, the newest version not marked corrupt.
     */
    std::optional<KeyVersion> Latest(StoreLevel level, const std::string& key) const;

    /**
     * Freshest memory-level version of @p key held by one of @p nodes — the
     * non-destructive form of DropNodeMemory for world-size-independent
     * recovery: planning a restore onto a survivor subset without editing
     * the manifest.
     */
    std::optional<KeyVersion> LatestMemoryAmong(
        const std::string& key, const std::vector<NodeId>& nodes) const;

    /**
     * Usable persist versions of @p key with iteration <= @p max_iteration,
     * newest first: verified, not marked corrupt. Empty when nothing
     * survives — the key is only recoverable from memory or initial state.
     */
    std::vector<PersistVersion> PersistFallbackChain(
        const std::string& key, std::size_t max_iteration) const;

    /** Marks one persist version damaged; it leaves every fallback chain. */
    void MarkPersistCorrupt(const std::string& key, std::size_t iteration);

    /** Marks a whole generation unusable as a restart target. */
    void MarkGenerationCorrupt(std::size_t iteration);

    /**
     * Marks generation @p iteration deliberately abandoned (a membership
     * change tore its barrier). It will never seal and never be eligible;
     * fsck classifies it separately from torn damage.
     */
    void MarkGenerationAborted(std::size_t iteration);

    /** Invalidates all memory-level versions held by @p node (node crash). */
    void DropNodeMemory(NodeId node);

    /** All keys present at @p level, sorted. */
    std::vector<std::string> KeysAt(StoreLevel level) const;

    /**
     * Marks checkpoint @p iteration complete at @p level. At the persist
     * level this also seals generation @p iteration.
     */
    void MarkCheckpointComplete(StoreLevel level, std::size_t iteration);

    /** Latest fully completed checkpoint iteration at @p level (or nullopt). */
    std::optional<std::size_t> LastCompleteIteration(StoreLevel level) const;

    /** Every known generation, ascending by iteration. */
    std::vector<GenerationInfo> Generations() const;

    /** Iterations of eligible restart targets, newest first. */
    std::vector<std::size_t> EligibleGenerations() const;

    /** Newest eligible restart target, if any. */
    std::optional<std::size_t> LatestEligibleGeneration() const;

    /**
     * Drops persist versions no eligible generation <= the cutoff still
     * needs, keeping the newest @p keep_generations eligible generations
     * (plus everything newer). A version below the cutoff survives while it
     * is the newest usable version of its key at or below the cutoff (an
     * unselected expert's shard backs later generations too). Returns the
     * (key, iteration) pairs pruned so the caller can erase their blobs.
     */
    std::vector<std::pair<std::string, std::size_t>> PrunePersistGenerations(
        std::size_t keep_generations);

    /** Persist-level state as a `moc-manifest/1` JSON document. */
    std::string ToJson() const;

    /**
     * Replaces the persist level (histories, generations, completion mark)
     * with the contents of a ToJson document. Memory-level state is not
     * serialized and is left untouched.
     * @throws std::invalid_argument on malformed input.
     */
    void LoadFromJson(const std::string& text);

  private:
    struct GenerationState {
        bool sealed = false;
        bool corrupt = false;
        bool aborted = false;
    };

    /** Caller holds mu_. */
    GenerationInfo GenerationInfoLocked(std::size_t iteration,
                                        const GenerationState& state) const;

    mutable std::mutex mu_;
    /** memory_[key][node] = that node's replica. */
    std::map<std::string, std::map<NodeId, KeyVersion>> memory_;
    /** persist_[key] = version history, ascending by iteration. */
    std::map<std::string, std::vector<PersistVersion>> persist_;
    std::map<std::size_t, GenerationState> generations_;
    std::optional<std::size_t> memory_complete_;
    std::optional<std::size_t> persist_complete_;
};

}  // namespace moc

#endif  // MOC_STORAGE_MANIFEST_H_
