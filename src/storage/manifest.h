#ifndef MOC_STORAGE_MANIFEST_H_
#define MOC_STORAGE_MANIFEST_H_

/**
 * @file
 * The checkpoint manifest: for every checkpointing unit key, the saved
 * versions at each level of the hierarchy (in-memory snapshot vs persistent
 * storage), with their iterations and owning nodes.
 *
 * The memory level keeps one version per holding node — an expert's
 * snapshot is replicated on the owner rank of every EP group — so that node
 * failures invalidate exactly the replicas that died. This metadata makes
 * PEC recovery well-defined: on a fault, the recovery planner consults the
 * manifest to find, per key, the newest version still reachable
 * (Section 5.1 "Recovery").
 */

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dist/topology.h"
#include "util/bytes.h"

namespace moc {

/** The two levels of the checkpoint hierarchy. */
enum class StoreLevel { kMemory, kPersist };

/** One saved version of one key. */
struct KeyVersion {
    /** Training iteration whose state this version captures. */
    std::size_t iteration = 0;
    /** Node whose memory holds it (memory level; 0 for persist). */
    NodeId node = 0;
    Bytes bytes = 0;
};

/**
 * Thread-safe manifest over both checkpoint levels.
 */
class CheckpointManifest {
  public:
    /** Records that @p key was saved at @p level capturing @p iteration. */
    void RecordSave(StoreLevel level, const std::string& key, std::size_t iteration,
                    NodeId node, Bytes bytes);

    /**
     * Freshest reachable version of @p key at @p level, if any. At the
     * memory level this is the newest among surviving node replicas.
     */
    std::optional<KeyVersion> Latest(StoreLevel level, const std::string& key) const;

    /** Invalidates all memory-level versions held by @p node (node crash). */
    void DropNodeMemory(NodeId node);

    /** All keys present at @p level, sorted. */
    std::vector<std::string> KeysAt(StoreLevel level) const;

    /** Marks checkpoint @p iteration complete at @p level. */
    void MarkCheckpointComplete(StoreLevel level, std::size_t iteration);

    /** Latest fully completed checkpoint iteration at @p level (or nullopt). */
    std::optional<std::size_t> LastCompleteIteration(StoreLevel level) const;

  private:
    mutable std::mutex mu_;
    /** memory_[key][node] = that node's replica. */
    std::map<std::string, std::map<NodeId, KeyVersion>> memory_;
    std::map<std::string, KeyVersion> persist_;
    std::optional<std::size_t> memory_complete_;
    std::optional<std::size_t> persist_complete_;
};

}  // namespace moc

#endif  // MOC_STORAGE_MANIFEST_H_
