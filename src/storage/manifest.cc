#include "storage/manifest.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/export.h"
#include "util/json.h"
#include "util/logging.h"

namespace moc {

std::string
VersionedShardKey(const std::string& key, std::size_t iteration) {
    return key + "@" + std::to_string(iteration);
}

void
CheckpointManifest::RecordSave(StoreLevel level, const std::string& key,
                               std::size_t iteration, NodeId node, Bytes bytes) {
    if (level == StoreLevel::kPersist) {
        RecordPersistVersion(key, iteration, bytes, /*crc=*/0, /*verified=*/true);
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto& replicas = memory_[key];
    auto it = replicas.find(node);
    if (it != replicas.end() && it->second.iteration > iteration) {
        MOC_PANIC("manifest: non-monotonic memory save for key " << key);
    }
    replicas[node] = KeyVersion{iteration, node, bytes};
}

void
CheckpointManifest::RecordPersistVersion(const std::string& key,
                                         std::size_t iteration, Bytes bytes,
                                         std::uint32_t crc, bool verified,
                                         std::optional<std::size_t> ref) {
    MOC_CHECK_ARG(!ref.has_value() || *ref < iteration,
                  "dedup ref must point at an older iteration");
    std::lock_guard<std::mutex> lock(mu_);
    auto& history = persist_[key];
    if (!history.empty() && history.back().iteration > iteration) {
        MOC_PANIC("manifest: non-monotonic persist save for key " << key);
    }
    PersistVersion version;
    version.iteration = iteration;
    version.bytes = bytes;
    version.crc = crc;
    version.verified = verified;
    version.ref = ref;
    if (!history.empty() && history.back().iteration == iteration) {
        history.back() = version;  // same-checkpoint re-record replaces
    } else {
        history.push_back(version);
    }
    generations_.try_emplace(iteration);
}

void
CheckpointManifest::RecordPersistDelta(const std::string& key,
                                       std::size_t iteration, Bytes bytes,
                                       std::uint32_t crc, bool verified,
                                       std::size_t delta_base,
                                       Bytes delta_bytes,
                                       std::uint32_t delta_crc) {
    MOC_CHECK_ARG(delta_base < iteration,
                  "delta base must be an older iteration");
    std::lock_guard<std::mutex> lock(mu_);
    auto& history = persist_[key];
    if (!history.empty() && history.back().iteration > iteration) {
        MOC_PANIC("manifest: non-monotonic persist save for key " << key);
    }
    PersistVersion version;
    version.iteration = iteration;
    version.bytes = bytes;
    version.crc = crc;
    version.verified = verified;
    version.delta_base = delta_base;
    version.delta_bytes = delta_bytes;
    version.delta_crc = delta_crc;
    if (!history.empty() && history.back().iteration == iteration) {
        history.back() = version;
    } else {
        history.push_back(version);
    }
    generations_.try_emplace(iteration);
}

std::optional<PersistVersion>
CheckpointManifest::FindPersistVersion(const std::string& key,
                                       std::size_t iteration) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = persist_.find(key);
    if (it == persist_.end()) {
        return std::nullopt;
    }
    for (const auto& version : it->second) {
        if (version.iteration == iteration) {
            return version;
        }
    }
    return std::nullopt;
}

std::optional<KeyVersion>
CheckpointManifest::Latest(StoreLevel level, const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (level == StoreLevel::kMemory) {
        auto it = memory_.find(key);
        if (it == memory_.end() || it->second.empty()) {
            return std::nullopt;
        }
        const KeyVersion* best = nullptr;
        for (const auto& [node, version] : it->second) {
            if (best == nullptr || version.iteration > best->iteration) {
                best = &version;
            }
        }
        return *best;
    }
    auto it = persist_.find(key);
    if (it == persist_.end()) {
        return std::nullopt;
    }
    for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
        if (!v->corrupt) {
            return KeyVersion{v->iteration, 0, v->bytes};
        }
    }
    return std::nullopt;
}

std::optional<KeyVersion>
CheckpointManifest::LatestMemoryAmong(const std::string& key,
                                      const std::vector<NodeId>& nodes) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memory_.find(key);
    if (it == memory_.end()) {
        return std::nullopt;
    }
    const KeyVersion* best = nullptr;
    for (const NodeId node : nodes) {
        const auto replica = it->second.find(node);
        if (replica == it->second.end()) {
            continue;
        }
        if (best == nullptr || replica->second.iteration > best->iteration) {
            best = &replica->second;
        }
    }
    if (best == nullptr) {
        return std::nullopt;
    }
    return *best;
}

std::vector<PersistVersion>
CheckpointManifest::PersistFallbackChain(const std::string& key,
                                         std::size_t max_iteration) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PersistVersion> chain;
    auto it = persist_.find(key);
    if (it == persist_.end()) {
        return chain;
    }
    for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
        if (v->iteration <= max_iteration && v->verified && !v->corrupt) {
            chain.push_back(*v);
        }
    }
    return chain;
}

void
CheckpointManifest::MarkPersistCorrupt(const std::string& key,
                                       std::size_t iteration) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = persist_.find(key);
    if (it == persist_.end()) {
        return;
    }
    for (auto& version : it->second) {
        if (version.iteration == iteration) {
            version.corrupt = true;
        }
    }
}

void
CheckpointManifest::MarkGenerationCorrupt(std::size_t iteration) {
    std::lock_guard<std::mutex> lock(mu_);
    generations_[iteration].corrupt = true;
}

void
CheckpointManifest::MarkGenerationAborted(std::size_t iteration) {
    std::lock_guard<std::mutex> lock(mu_);
    generations_[iteration].aborted = true;
}

void
CheckpointManifest::DropNodeMemory(NodeId node) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = memory_.begin(); it != memory_.end();) {
        it->second.erase(node);
        if (it->second.empty()) {
            it = memory_.erase(it);
        } else {
            ++it;
        }
    }
}

std::vector<std::string>
CheckpointManifest::KeysAt(StoreLevel level) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> keys;
    if (level == StoreLevel::kMemory) {
        keys.reserve(memory_.size());
        for (const auto& [key, replicas] : memory_) {
            keys.push_back(key);
        }
    } else {
        keys.reserve(persist_.size());
        for (const auto& [key, history] : persist_) {
            if (!history.empty()) {
                keys.push_back(key);
            }
        }
    }
    return keys;
}

void
CheckpointManifest::MarkCheckpointComplete(StoreLevel level, std::size_t iteration) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = level == StoreLevel::kMemory ? memory_complete_ : persist_complete_;
    slot = iteration;
    if (level == StoreLevel::kPersist) {
        generations_[iteration].sealed = true;
    }
}

std::optional<std::size_t>
CheckpointManifest::LastCompleteIteration(StoreLevel level) const {
    std::lock_guard<std::mutex> lock(mu_);
    return level == StoreLevel::kMemory ? memory_complete_ : persist_complete_;
}

GenerationInfo
CheckpointManifest::GenerationInfoLocked(std::size_t iteration,
                                         const GenerationState& state) const {
    GenerationInfo info;
    info.iteration = iteration;
    info.sealed = state.sealed;
    info.marked_corrupt = state.corrupt;
    info.aborted = state.aborted;
    for (const auto& [key, history] : persist_) {
        for (const auto& version : history) {
            if (version.iteration != iteration) {
                continue;
            }
            ++info.shards;
            if (version.verified) {
                ++info.verified_shards;
            }
            if (version.corrupt) {
                ++info.corrupt_shards;
            }
        }
    }
    info.eligible = info.sealed && !info.marked_corrupt && !info.aborted &&
                    info.corrupt_shards == 0 &&
                    info.verified_shards == info.shards;
    return info;
}

std::vector<GenerationInfo>
CheckpointManifest::Generations() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<GenerationInfo> infos;
    infos.reserve(generations_.size());
    for (const auto& [iteration, state] : generations_) {
        infos.push_back(GenerationInfoLocked(iteration, state));
    }
    return infos;
}

std::vector<std::size_t>
CheckpointManifest::EligibleGenerations() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::size_t> eligible;
    for (auto it = generations_.rbegin(); it != generations_.rend(); ++it) {
        if (GenerationInfoLocked(it->first, it->second).eligible) {
            eligible.push_back(it->first);
        }
    }
    return eligible;
}

std::optional<std::size_t>
CheckpointManifest::LatestEligibleGeneration() const {
    const auto eligible = EligibleGenerations();
    if (eligible.empty()) {
        return std::nullopt;
    }
    return eligible.front();
}

std::vector<std::pair<std::string, std::size_t>>
CheckpointManifest::PrunePersistGenerations(std::size_t keep_generations) {
    MOC_CHECK_ARG(keep_generations >= 1, "must keep at least one generation");
    const auto eligible = EligibleGenerations();  // newest first
    if (eligible.size() <= keep_generations) {
        return {};
    }
    const std::size_t cutoff = eligible[keep_generations - 1];
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, std::size_t>> pruned;
    for (auto& [key, history] : persist_) {
        // The newest usable version at or below the cutoff still backs the
        // oldest kept generation (PEC: unselected experts carry forward).
        std::optional<std::size_t> needed;
        for (auto v = history.rbegin(); v != history.rend(); ++v) {
            if (v->iteration <= cutoff && v->verified && !v->corrupt) {
                needed = v->iteration;
                break;
            }
        }
        // A kept version that is a delta (or a dedup ref) is only usable
        // while its base chain survives: close the kept set over delta_base
        // and ref edges before pruning, or reclamation would strand every
        // chain whose full write predates the cutoff.
        std::set<std::size_t> kept;
        for (const auto& v : history) {
            if (v.iteration >= cutoff ||
                (needed.has_value() && v.iteration == *needed)) {
                kept.insert(v.iteration);
            }
        }
        bool grew = true;
        while (grew) {
            grew = false;
            for (const auto& v : history) {
                if (kept.count(v.iteration) == 0) {
                    continue;
                }
                for (const std::optional<std::size_t>& dep :
                     {v.delta_base, v.ref}) {
                    if (dep.has_value() && kept.insert(*dep).second) {
                        grew = true;
                    }
                }
            }
        }
        auto keep = [&](const PersistVersion& v) {
            return kept.count(v.iteration) != 0;
        };
        for (const auto& version : history) {
            if (!keep(version)) {
                pruned.emplace_back(key, version.iteration);
            }
        }
        history.erase(std::remove_if(history.begin(), history.end(),
                                     [&](const PersistVersion& v) {
                                         return !keep(v);
                                     }),
                      history.end());
    }
    // Generations below the cutoff are no longer restart candidates, even
    // when carried-forward versions from them survive: their full shard
    // sets are gone.
    generations_.erase(generations_.begin(), generations_.lower_bound(cutoff));
    return pruned;
}

std::string
CheckpointManifest::ToJson() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    out << "{\n  \"format\": \"moc-manifest/1\",\n";
    if (persist_complete_.has_value()) {
        out << "  \"last_complete\": " << *persist_complete_ << ",\n";
    }
    out << "  \"generations\": [";
    bool first = true;
    for (const auto& [iteration, state] : generations_) {
        out << (first ? "" : ",") << "\n    {\"iteration\": " << iteration
            << ", \"sealed\": " << (state.sealed ? "true" : "false")
            << ", \"corrupt\": " << (state.corrupt ? "true" : "false")
            << ", \"aborted\": " << (state.aborted ? "true" : "false") << "}";
        first = false;
    }
    out << "\n  ],\n  \"persist\": {";
    first = true;
    for (const auto& [key, history] : persist_) {
        out << (first ? "" : ",") << "\n    \"" << obs::JsonEscape(key)
            << "\": [";
        bool first_version = true;
        for (const auto& v : history) {
            out << (first_version ? "" : ", ") << "{\"iteration\": "
                << v.iteration << ", \"bytes\": " << v.bytes << ", \"crc\": "
                << v.crc << ", \"verified\": " << (v.verified ? "true" : "false")
                << ", \"corrupt\": " << (v.corrupt ? "true" : "false");
            if (v.ref.has_value()) {
                out << ", \"ref\": " << *v.ref;
            }
            if (v.delta_base.has_value()) {
                out << ", \"delta_base\": " << *v.delta_base
                    << ", \"delta_bytes\": " << v.delta_bytes
                    << ", \"delta_crc\": " << v.delta_crc;
            }
            out << "}";
            first_version = false;
        }
        out << "]";
        first = false;
    }
    out << "\n  }\n}\n";
    return out.str();
}

void
CheckpointManifest::LoadFromJson(const std::string& text) {
    const json::Value root = json::Parse(text);
    MOC_CHECK_ARG(root.StringOr("format", "") == "moc-manifest/1",
                  "not a moc-manifest/1 document");
    std::map<std::string, std::vector<PersistVersion>> persist;
    std::map<std::size_t, GenerationState> generations;
    std::optional<std::size_t> complete;
    for (const auto& [key, history] : root.At("persist").AsObject()) {
        for (const auto& entry : history.AsArray()) {
            PersistVersion v;
            // AsU64, not AsNumber: iterations and byte counts past 2^53
            // must not round through a double on reload.
            v.iteration =
                static_cast<std::size_t>(entry.At("iteration").AsU64());
            v.bytes = static_cast<Bytes>(entry.At("bytes").AsU64());
            v.crc = static_cast<std::uint32_t>(entry.At("crc").AsU64());
            v.verified = entry.At("verified").AsBool();
            v.corrupt = entry.At("corrupt").AsBool();
            if (const json::Value* ref = entry.Find("ref")) {
                v.ref = static_cast<std::size_t>(ref->AsU64());
            }
            if (const json::Value* base = entry.Find("delta_base")) {
                v.delta_base = static_cast<std::size_t>(base->AsU64());
                v.delta_bytes = static_cast<Bytes>(entry.U64Or("delta_bytes", 0));
                v.delta_crc =
                    static_cast<std::uint32_t>(entry.U64Or("delta_crc", 0));
            }
            persist[key].push_back(v);
        }
        std::sort(persist[key].begin(), persist[key].end(),
                  [](const PersistVersion& a, const PersistVersion& b) {
                      return a.iteration < b.iteration;
                  });
    }
    for (const auto& entry : root.At("generations").AsArray()) {
        const auto iteration =
            static_cast<std::size_t>(entry.At("iteration").AsU64());
        auto& state = generations[iteration];
        state.sealed = entry.At("sealed").AsBool();
        state.corrupt = entry.At("corrupt").AsBool();
        // Absent in pre-elastic documents: those never aborted generations.
        if (const json::Value* aborted = entry.Find("aborted")) {
            state.aborted = aborted->AsBool();
        }
    }
    if (const json::Value* last = root.Find("last_complete")) {
        complete = static_cast<std::size_t>(last->AsU64());
    }
    std::lock_guard<std::mutex> lock(mu_);
    persist_ = std::move(persist);
    generations_ = std::move(generations);
    persist_complete_ = complete;
}

}  // namespace moc
