#include "storage/manifest.h"

#include "util/logging.h"

namespace moc {

void
CheckpointManifest::RecordSave(StoreLevel level, const std::string& key,
                               std::size_t iteration, NodeId node, Bytes bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (level == StoreLevel::kMemory) {
        auto& replicas = memory_[key];
        auto it = replicas.find(node);
        if (it != replicas.end() && it->second.iteration > iteration) {
            MOC_PANIC("manifest: non-monotonic memory save for key " << key);
        }
        replicas[node] = KeyVersion{iteration, node, bytes};
        return;
    }
    auto it = persist_.find(key);
    if (it != persist_.end() && it->second.iteration > iteration) {
        MOC_PANIC("manifest: non-monotonic persist save for key " << key);
    }
    persist_[key] = KeyVersion{iteration, 0, bytes};
}

std::optional<KeyVersion>
CheckpointManifest::Latest(StoreLevel level, const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (level == StoreLevel::kMemory) {
        auto it = memory_.find(key);
        if (it == memory_.end() || it->second.empty()) {
            return std::nullopt;
        }
        const KeyVersion* best = nullptr;
        for (const auto& [node, version] : it->second) {
            if (best == nullptr || version.iteration > best->iteration) {
                best = &version;
            }
        }
        return *best;
    }
    auto it = persist_.find(key);
    if (it == persist_.end()) {
        return std::nullopt;
    }
    return it->second;
}

void
CheckpointManifest::DropNodeMemory(NodeId node) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = memory_.begin(); it != memory_.end();) {
        it->second.erase(node);
        if (it->second.empty()) {
            it = memory_.erase(it);
        } else {
            ++it;
        }
    }
}

std::vector<std::string>
CheckpointManifest::KeysAt(StoreLevel level) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> keys;
    if (level == StoreLevel::kMemory) {
        keys.reserve(memory_.size());
        for (const auto& [key, replicas] : memory_) {
            keys.push_back(key);
        }
    } else {
        keys.reserve(persist_.size());
        for (const auto& [key, version] : persist_) {
            keys.push_back(key);
        }
    }
    return keys;
}

void
CheckpointManifest::MarkCheckpointComplete(StoreLevel level, std::size_t iteration) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = level == StoreLevel::kMemory ? memory_complete_ : persist_complete_;
    slot = iteration;
}

std::optional<std::size_t>
CheckpointManifest::LastCompleteIteration(StoreLevel level) const {
    std::lock_guard<std::mutex> lock(mu_);
    return level == StoreLevel::kMemory ? memory_complete_ : persist_complete_;
}

}  // namespace moc
