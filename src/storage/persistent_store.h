#ifndef MOC_STORAGE_PERSISTENT_STORE_H_
#define MOC_STORAGE_PERSISTENT_STORE_H_

/**
 * @file
 * The simulated distributed persistent filesystem: the "persist" level of
 * the checkpoint hierarchy. Durable across node failures; writes and reads
 * are costed by a bandwidth/latency model so timing experiments can charge
 * realistic persist durations.
 */

#include <map>
#include <mutex>

#include "storage/object_store.h"
#include "util/clock.h"

namespace moc {

/** I/O cost model of the distributed filesystem. */
struct StorageIoModel {
    /** Aggregate write bandwidth available to one rank, bytes/s. */
    double write_bandwidth = 500.0 * 1024 * 1024;
    /** Read bandwidth per rank, bytes/s. */
    double read_bandwidth = 1.0 * 1024 * 1024 * 1024;
    /** Per-operation latency, seconds. */
    double latency = 2e-3;
};

/**
 * Durable key-value store shared by all nodes.
 */
class PersistentStore final : public ObjectStore {
  public:
    explicit PersistentStore(const StorageIoModel& io = StorageIoModel{});

    void Put(const std::string& key, Blob blob) override;
    std::optional<Blob> Get(const std::string& key) const override;
    bool Contains(const std::string& key) const override;
    void Erase(const std::string& key) override;
    std::vector<std::string> Keys() const override;
    Bytes TotalBytes() const override;
    std::size_t Count() const override;

    /** Time one rank needs to write @p bytes. */
    Seconds WriteTime(Bytes bytes) const;

    /** Time one rank needs to read @p bytes. */
    Seconds ReadTime(Bytes bytes) const;

    const StorageIoModel& io() const { return io_; }

    /** Cumulative bytes ever written (for Fig. 13f-style accounting). */
    Bytes BytesWritten() const;

  private:
    StorageIoModel io_;
    mutable std::mutex mu_;
    std::map<std::string, Blob> data_;
    Bytes total_bytes_ = 0;
    Bytes bytes_written_ = 0;
};

}  // namespace moc

#endif  // MOC_STORAGE_PERSISTENT_STORE_H_
