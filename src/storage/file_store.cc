#include "storage/file_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/store_error.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace fs = std::filesystem;

namespace moc {

namespace {

constexpr char kFileSuffix[] = ".blob";
constexpr std::size_t kTrailerSize = sizeof(std::uint32_t);

void
ValidateKey(const std::string& key) {
    MOC_CHECK_ARG(!key.empty(), "empty store key");
    MOC_CHECK_ARG(key.front() != '/' && key.back() != '/',
                  "key must not start or end with '/': " << key);
    std::size_t start = 0;
    while (start <= key.size()) {
        const std::size_t end = key.find('/', start);
        const std::string segment =
            key.substr(start, end == std::string::npos ? std::string::npos
                                                       : end - start);
        MOC_CHECK_ARG(!segment.empty(), "empty path segment in key: " << key);
        MOC_CHECK_ARG(segment != "." && segment != "..",
                      "key may not contain dot segments: " << key);
        if (end == std::string::npos) {
            break;
        }
        start = end + 1;
    }
}

/** Seconds since the obs tracer epoch, for I/O latency histograms. */
double
NowSeconds() {
    return static_cast<double>(obs::Tracer::NowNs()) * 1e-9;
}

/**
 * Flushes @p path's data (or, for a directory, its entries) to stable
 * storage. The atomic-rename protocol needs both: fsync the temp file
 * before the rename so the data is durable under its new name, and fsync
 * the parent directory after so the rename itself survives power loss.
 * On Windows there is no directory fsync; this becomes a no-op there and
 * the store degrades to ordinary (still atomic-on-crash) rename semantics.
 */
void
SyncPath(const fs::path& path, const std::string& key) {
#ifndef _WIN32
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        throw StoreError(StoreErrorKind::kTransient, key,
                         "cannot open for fsync: " + path.string());
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
        throw StoreError(StoreErrorKind::kTransient, key,
                         "fsync failed for " + path.string());
    }
#else
    (void)path;
    (void)key;
#endif
}

}  // namespace

FileStore::FileStore(fs::path root) : root_(std::move(root)) {
    if (fs::exists(root_)) {
        MOC_CHECK_ARG(fs::is_directory(root_),
                      "FileStore root is not a directory: " << root_.string());
    } else {
        fs::create_directories(root_);
    }
}

fs::path
FileStore::PathFor(const std::string& key) const {
    ValidateKey(key);
    return root_ / (key + kFileSuffix);
}

void
FileStore::Put(const std::string& key, Blob blob) {
    const obs::TraceSpan span("filestore.put", "storage");
    const double start = NowSeconds();
    const fs::path path = PathFor(key);
    std::lock_guard<std::mutex> lock(mu_);
    fs::create_directories(path.parent_path());
    const fs::path tmp = path.string() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw StoreError(StoreErrorKind::kTransient, key,
                             "cannot open " + tmp.string());
        }
        out.write(reinterpret_cast<const char*>(blob.data()),
                  static_cast<std::streamsize>(blob.size()));
        const std::uint32_t crc = Crc32(blob.data(), blob.size());
        out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
        if (!out) {
            throw StoreError(StoreErrorKind::kTransient, key,
                             "write failed for " + tmp.string());
        }
    }
    SyncPath(tmp, key);        // data durable before it becomes visible
    fs::rename(tmp, path);     // atomic replace on POSIX
    SyncPath(path.parent_path(), key);  // the rename itself durable
    auto& registry = obs::MetricsRegistry::Instance();
    static obs::Counter& write_bytes = registry.GetCounter("filestore.write_bytes");
    static obs::Histogram& write_seconds =
        registry.GetHistogram("filestore.write_seconds");
    write_bytes.Add(blob.size());
    write_seconds.Observe(NowSeconds() - start);
}

std::optional<Blob>
FileStore::Get(const std::string& key) const {
    const obs::TraceSpan span("filestore.get", "storage");
    const double start = NowSeconds();
    const fs::path path = PathFor(key);
    std::lock_guard<std::mutex> lock(mu_);
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        return std::nullopt;
    }
    auto& registry_for_errors = obs::MetricsRegistry::Instance();
    static obs::Counter& corrupt_reads =
        registry_for_errors.GetCounter("store.corrupt_reads_total");
    const auto total = static_cast<std::size_t>(in.tellg());
    if (total < kTrailerSize) {
        corrupt_reads.Add();
        throw StoreError(StoreErrorKind::kCorrupt, key,
                         "truncated blob file " + path.string());
    }
    Blob blob(total - kTrailerSize);
    std::uint32_t stored_crc = 0;
    in.seekg(0);
    in.read(reinterpret_cast<char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
    if (!in) {
        throw StoreError(StoreErrorKind::kTransient, key,
                         "read failed for " + path.string());
    }
    if (Crc32(blob.data(), blob.size()) != stored_crc) {
        corrupt_reads.Add();
        throw StoreError(StoreErrorKind::kCorrupt, key,
                         "CRC mismatch (torn write?) in " + path.string());
    }
    auto& registry = obs::MetricsRegistry::Instance();
    static obs::Counter& read_bytes = registry.GetCounter("filestore.read_bytes");
    static obs::Histogram& read_seconds =
        registry.GetHistogram("filestore.read_seconds");
    read_bytes.Add(blob.size());
    read_seconds.Observe(NowSeconds() - start);
    return blob;
}

bool
FileStore::Contains(const std::string& key) const {
    const fs::path path = PathFor(key);
    std::lock_guard<std::mutex> lock(mu_);
    return fs::exists(path);
}

void
FileStore::Erase(const std::string& key) {
    const fs::path path = PathFor(key);
    std::lock_guard<std::mutex> lock(mu_);
    std::error_code ec;
    fs::remove(path, ec);
}

std::vector<std::string>
FileStore::Keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> keys;
    if (!fs::exists(root_)) {
        return keys;
    }
    const std::string suffix = kFileSuffix;
    for (const auto& entry : fs::recursive_directory_iterator(root_)) {
        if (!entry.is_regular_file()) {
            continue;
        }
        std::string rel = fs::relative(entry.path(), root_).generic_string();
        if (rel.size() > suffix.size() &&
            rel.compare(rel.size() - suffix.size(), suffix.size(), suffix) == 0) {
            keys.push_back(rel.substr(0, rel.size() - suffix.size()));
        }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

Bytes
FileStore::TotalBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    Bytes total = 0;
    if (!fs::exists(root_)) {
        return total;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root_)) {
        if (entry.is_regular_file()) {
            const auto size = entry.file_size();
            total += size >= kTrailerSize ? size - kTrailerSize : 0;
        }
    }
    return total;
}

std::size_t
FileStore::Count() const {
    return Keys().size();
}

}  // namespace moc
