#include "storage/faulty_store.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/logging.h"

namespace moc {

namespace {

void
CheckProbability(double p, const char* name) {
    MOC_CHECK_ARG(p >= 0.0 && p <= 1.0,
                  "fault probability " << name << " out of [0,1]: " << p);
}

obs::Counter&
InjectedCounter(const char* suffix) {
    return obs::MetricsRegistry::Instance().GetCounter(
        std::string("faultystore.") + suffix);
}

}  // namespace

bool
StorageFaultProfile::Active() const {
    return put_transient_error > 0.0 || get_transient_error > 0.0 ||
           torn_write > 0.0 || bit_flip > 0.0 || lost_write > 0.0 ||
           read_corrupt > 0.0 || latency_spike > 0.0;
}

FaultyStore::FaultyStore(ObjectStore& base, std::uint64_t seed)
    : base_(base), rng_(seed) {}

void
FaultyStore::Arm(const StorageFaultProfile& profile) {
    CheckProbability(profile.put_transient_error, "put_transient_error");
    CheckProbability(profile.get_transient_error, "get_transient_error");
    CheckProbability(profile.torn_write, "torn_write");
    CheckProbability(profile.bit_flip, "bit_flip");
    CheckProbability(profile.lost_write, "lost_write");
    CheckProbability(profile.read_corrupt, "read_corrupt");
    CheckProbability(profile.latency_spike, "latency_spike");
    MOC_CHECK_ARG(profile.latency_spike_seconds >= 0.0,
                  "latency_spike_seconds must be >= 0");
    std::lock_guard<std::mutex> lock(mu_);
    profile_ = profile;
    armed_ = true;
}

void
FaultyStore::Disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = false;
}

bool
FaultyStore::armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return armed_;
}

InjectedFaultCounts
FaultyStore::injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_;
}

bool
FaultyStore::Roll(double p) const {
    // Caller holds mu_. Always draw so the stream position (and therefore
    // the whole fault sequence) depends only on the op sequence and seed,
    // not on which probabilities are zero.
    return rng_.Uniform() < p;
}

void
FaultyStore::MaybeLatencySpike(const char* op) const {
    Seconds delay = 0.0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (armed_ && Roll(profile_.latency_spike)) {
            delay = profile_.latency_spike_seconds;
            ++injected_.latency_spikes;
        }
    }
    if (delay > 0.0) {
        static obs::Counter& spikes = InjectedCounter("latency_spikes");
        spikes.Add();
        MOC_DEBUG << "faultystore: latency spike on " << op;
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
}

void
FaultyStore::Put(const std::string& key, Blob blob) {
    MaybeLatencySpike("put");
    enum class WriteFault { kNone, kTransient, kTorn, kBitFlip, kLost };
    WriteFault fault = WriteFault::kNone;
    std::uint64_t victim_bit = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (armed_) {
            if (Roll(profile_.put_transient_error)) {
                fault = WriteFault::kTransient;
                ++injected_.transient_errors;
            } else if (Roll(profile_.lost_write)) {
                fault = WriteFault::kLost;
                ++injected_.lost_writes;
            } else if (Roll(profile_.torn_write) && !blob.empty()) {
                fault = WriteFault::kTorn;
                victim_bit = rng_.UniformInt(blob.size());  // new length
                ++injected_.torn_writes;
            } else if (Roll(profile_.bit_flip) && !blob.empty()) {
                fault = WriteFault::kBitFlip;
                victim_bit = rng_.UniformInt(blob.size() * 8);
                ++injected_.bit_flips;
            }
        }
    }
    switch (fault) {
        case WriteFault::kTransient: {
            static obs::Counter& c = InjectedCounter("transient_errors");
            c.Add();
            throw StoreError(StoreErrorKind::kTransient, key,
                             "injected transient write error");
        }
        case WriteFault::kLost: {
            static obs::Counter& c = InjectedCounter("lost_writes");
            c.Add();
            return;  // reports success, stores nothing
        }
        case WriteFault::kTorn: {
            static obs::Counter& c = InjectedCounter("torn_writes");
            c.Add();
            blob.resize(static_cast<std::size_t>(victim_bit));
            break;
        }
        case WriteFault::kBitFlip: {
            static obs::Counter& c = InjectedCounter("bit_flips");
            c.Add();
            blob[static_cast<std::size_t>(victim_bit / 8)] ^=
                static_cast<std::uint8_t>(1u << (victim_bit % 8));
            break;
        }
        case WriteFault::kNone:
            break;
    }
    base_.Put(key, std::move(blob));
}

std::optional<Blob>
FaultyStore::Get(const std::string& key) const {
    MaybeLatencySpike("get");
    bool transient = false;
    bool corrupt = false;
    std::uint64_t raw_bit = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (armed_) {
            if (Roll(profile_.get_transient_error)) {
                transient = true;
                ++injected_.transient_errors;
            } else if (Roll(profile_.read_corrupt)) {
                corrupt = true;
                raw_bit = rng_.Next();
                ++injected_.corrupt_reads;
            }
        }
    }
    if (transient) {
        static obs::Counter& c = InjectedCounter("transient_errors");
        c.Add();
        throw StoreError(StoreErrorKind::kTransient, key,
                         "injected transient read error");
    }
    auto blob = base_.Get(key);
    if (corrupt && blob.has_value() && !blob->empty()) {
        static obs::Counter& c = InjectedCounter("corrupt_reads");
        c.Add();
        const std::uint64_t bit = raw_bit % (blob->size() * 8);
        (*blob)[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
    }
    return blob;
}

bool
FaultyStore::Contains(const std::string& key) const {
    return base_.Contains(key);
}

void
FaultyStore::Erase(const std::string& key) {
    base_.Erase(key);
}

std::vector<std::string>
FaultyStore::Keys() const {
    return base_.Keys();
}

Bytes
FaultyStore::TotalBytes() const {
    return base_.TotalBytes();
}

std::size_t
FaultyStore::Count() const {
    return base_.Count();
}

}  // namespace moc
