#ifndef MOC_STORAGE_DELTA_CODEC_H_
#define MOC_STORAGE_DELTA_CODEC_H_

/**
 * @file
 * Changed-chunk delta encoding for per-expert checkpoint blobs.
 *
 * Content-hash dedup (PR 4) only skips *unchanged* experts; a hot expert
 * that changed 1% of its weights still re-persisted 100% of its bytes.
 * Delta encoding closes that gap: the blob is cut into fixed-size chunks,
 * each chunk's identity (CRC-32C + FNV-1a 64, see util/hash.h for why one
 * 32-bit hash is not an identity) is compared against the previous sealed
 * generation's blob, and only the changed chunks are persisted — a bitmap
 * plus their payloads, stored under `<key>@<iter>.delta`.
 *
 * A delta record names the iteration it applies on top of (`base`), so
 * restore reconstructs the logical blob by walking the chain down to a full
 * write and applying records upward. Chains are bounded by the persist
 * pipeline (`max_delta_chain`): a forced full write caps both restore cost
 * and the blast radius of a damaged base — `moc_cli fsck` verifies every
 * link and a generation whose chain is broken is not a restart target.
 *
 * Record wire format (all little-endian):
 *
 *   "MOCD" | u32 version=1 | u64 logical_bytes | u64 base_iteration |
 *   u32 chunk_bytes | u32 num_chunks | u32 changed_count |
 *   bitmap[ceil(num_chunks/8)] | changed chunk payloads (ascending index;
 *   the last chunk of the blob may be short)
 */

#include <cstdint>
#include <string>
#include <vector>

#include "storage/object_store.h"

namespace moc {

/** Content identity of one chunk: two structurally unrelated hashes. */
struct ChunkId {
    std::uint32_t crc = 0;
    std::uint64_t fnv = 0;

    bool operator==(const ChunkId& o) const {
        return crc == o.crc && fnv == o.fnv;
    }
    bool operator!=(const ChunkId& o) const { return !(*this == o); }
};

/** Per-chunk identities of @p blob cut into @p chunk_bytes chunks. */
std::vector<ChunkId> HashChunks(const Blob& blob, std::size_t chunk_bytes);

/** Parsed header + layout of one delta record. */
struct DeltaRecord {
    Bytes logical_bytes = 0;
    /** Iteration of the version this record applies on top of. */
    std::size_t base_iteration = 0;
    std::size_t chunk_bytes = 0;
    std::size_t num_chunks = 0;
    /** Changed chunk indices, ascending. */
    std::vector<std::uint32_t> changed;
    /** Offset of the first chunk payload inside the record. */
    std::size_t payload_offset = 0;
};

/**
 * Encodes the chunks of @p blob whose index appears in @p changed
 * (ascending, deduplicated) as a delta record against @p base_iteration.
 * @p blob must cut into exactly the same chunk grid as the base — the
 * pipeline forces a full write when sizes differ.
 */
Blob EncodeDelta(const Blob& blob, const std::vector<std::uint32_t>& changed,
                 std::size_t chunk_bytes, std::size_t base_iteration);

/**
 * Parses and validates a delta record's header, bitmap, and payload length.
 * @throws std::invalid_argument on anything malformed (bad magic, version,
 * geometry that doesn't add up, truncated payload).
 */
DeltaRecord ParseDelta(const Blob& record);

/**
 * Reconstructs the logical blob: @p base overwritten with the changed
 * chunks of @p record. @throws std::invalid_argument when @p base does not
 * match the record's geometry (wrong size — the chain is inconsistent).
 */
Blob ApplyDelta(const Blob& record, const Blob& base);

/**
 * Store key of one delta record: "<key>@<iteration>.delta", beside the full
 * blobs' VersionedShardKey namespace.
 */
std::string DeltaShardKey(const std::string& key, std::size_t iteration);

}  // namespace moc

#endif  // MOC_STORAGE_DELTA_CODEC_H_
