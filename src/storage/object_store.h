#ifndef MOC_STORAGE_OBJECT_STORE_H_
#define MOC_STORAGE_OBJECT_STORE_H_

/**
 * @file
 * The key-value object-store interface underlying both checkpoint levels
 * (Section 5.1: "we utilize key-value pairs for efficient retrieval from
 * both memory and distributed storage").
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace moc {

/** Raw byte blob. */
using Blob = std::vector<std::uint8_t>;

/**
 * Abstract key-value blob store. Implementations are thread-safe: the
 * asynchronous checkpoint agents write concurrently with readers.
 */
class ObjectStore {
  public:
    virtual ~ObjectStore() = default;

    /** Stores (overwrites) @p key. */
    virtual void Put(const std::string& key, Blob blob) = 0;

    /** Retrieves @p key, or nullopt if absent. */
    virtual std::optional<Blob> Get(const std::string& key) const = 0;

    virtual bool Contains(const std::string& key) const = 0;

    /** Removes @p key (no-op if absent). */
    virtual void Erase(const std::string& key) = 0;

    /** All keys, sorted. */
    virtual std::vector<std::string> Keys() const = 0;

    /** Total stored payload bytes. */
    virtual Bytes TotalBytes() const = 0;

    /** Number of stored keys. */
    virtual std::size_t Count() const = 0;
};

}  // namespace moc

#endif  // MOC_STORAGE_OBJECT_STORE_H_
