#include "storage/persistent_store.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace moc {

PersistentStore::PersistentStore(const StorageIoModel& io) : io_(io) {
    MOC_CHECK_ARG(io.write_bandwidth > 0.0 && io.read_bandwidth > 0.0,
                  "storage bandwidths must be > 0");
}

void
PersistentStore::Put(const std::string& key, Blob blob) {
    static obs::Counter& writes =
        obs::MetricsRegistry::Instance().GetCounter("store.writes");
    static obs::Counter& write_bytes =
        obs::MetricsRegistry::Instance().GetCounter("store.write_bytes");
    writes.Add();
    write_bytes.Add(blob.size());
    std::lock_guard<std::mutex> lock(mu_);
    bytes_written_ += blob.size();
    auto it = data_.find(key);
    if (it != data_.end()) {
        total_bytes_ -= it->second.size();
        it->second = std::move(blob);
        total_bytes_ += it->second.size();
        return;
    }
    total_bytes_ += blob.size();
    data_.emplace(key, std::move(blob));
}

std::optional<Blob>
PersistentStore::Get(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(key);
    if (it == data_.end()) {
        return std::nullopt;
    }
    static obs::Counter& reads =
        obs::MetricsRegistry::Instance().GetCounter("store.reads");
    static obs::Counter& read_bytes =
        obs::MetricsRegistry::Instance().GetCounter("store.read_bytes");
    reads.Add();
    read_bytes.Add(it->second.size());
    return it->second;
}

bool
PersistentStore::Contains(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_.count(key) > 0;
}

void
PersistentStore::Erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(key);
    if (it != data_.end()) {
        total_bytes_ -= it->second.size();
        data_.erase(it);
    }
}

std::vector<std::string>
PersistentStore::Keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> keys;
    keys.reserve(data_.size());
    for (const auto& [key, blob] : data_) {
        keys.push_back(key);
    }
    return keys;
}

Bytes
PersistentStore::TotalBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
}

std::size_t
PersistentStore::Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_.size();
}

Seconds
PersistentStore::WriteTime(Bytes bytes) const {
    return io_.latency + static_cast<double>(bytes) / io_.write_bandwidth;
}

Seconds
PersistentStore::ReadTime(Bytes bytes) const {
    return io_.latency + static_cast<double>(bytes) / io_.read_bandwidth;
}

Bytes
PersistentStore::BytesWritten() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
}

}  // namespace moc
