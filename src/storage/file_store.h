#ifndef MOC_STORAGE_FILE_STORE_H_
#define MOC_STORAGE_FILE_STORE_H_

/**
 * @file
 * A real on-disk persistent store: the production counterpart of the
 * simulated PersistentStore. Each key maps to one file under a root
 * directory ("/" in keys becomes a subdirectory), written atomically
 * (temp file + rename) with a CRC32 trailer so torn writes are detected on
 * read. Useful when the library is embedded in an actual training job
 * rather than an experiment harness.
 */

#include <filesystem>
#include <mutex>
#include <string>

#include "storage/object_store.h"

namespace moc {

/**
 * Durable file-backed key-value store.
 *
 * Keys must be non-empty, use '/' as the only separator, and contain no
 * "." or ".." segments (validated on every call).
 */
class FileStore final : public ObjectStore {
  public:
    /**
     * Opens (creating if needed) the store rooted at @p root.
     * @throws std::invalid_argument if @p root exists and is not a directory.
     */
    explicit FileStore(std::filesystem::path root);

    void Put(const std::string& key, Blob blob) override;
    std::optional<Blob> Get(const std::string& key) const override;
    bool Contains(const std::string& key) const override;
    void Erase(const std::string& key) override;
    std::vector<std::string> Keys() const override;
    Bytes TotalBytes() const override;
    std::size_t Count() const override;

    const std::filesystem::path& root() const { return root_; }

  private:
    /** Validates @p key and returns its on-disk path. */
    std::filesystem::path PathFor(const std::string& key) const;

    std::filesystem::path root_;
    mutable std::mutex mu_;
};

}  // namespace moc

#endif  // MOC_STORAGE_FILE_STORE_H_
