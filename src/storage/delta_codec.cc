#include "storage/delta_codec.h"

#include <cstring>
#include <stdexcept>

#include "storage/manifest.h"
#include "util/crc32.h"
#include "util/hash.h"

namespace moc {

namespace {

constexpr char kMagic[4] = {'M', 'O', 'C', 'D'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 4 + 4 + 4;

void
PutU32(Blob& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void
PutU64(Blob& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint32_t
GetU32(const Blob& in, std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
    }
    return v;
}

std::uint64_t
GetU64(const Blob& in, std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
    }
    return v;
}

[[noreturn]] void
Malformed(const std::string& what) {
    throw std::invalid_argument("delta record: " + what);
}

std::size_t
NumChunks(std::size_t size, std::size_t chunk_bytes) {
    return size == 0 ? 0 : (size + chunk_bytes - 1) / chunk_bytes;
}

/** Byte length of chunk @p index of a @p size-byte blob (last may be short). */
std::size_t
ChunkLen(std::size_t size, std::size_t chunk_bytes, std::size_t index) {
    const std::size_t offset = index * chunk_bytes;
    return offset + chunk_bytes <= size ? chunk_bytes : size - offset;
}

}  // namespace

std::vector<ChunkId>
HashChunks(const Blob& blob, std::size_t chunk_bytes) {
    if (chunk_bytes == 0) {
        throw std::invalid_argument("chunk_bytes must be > 0");
    }
    const std::size_t n = NumChunks(blob.size(), chunk_bytes);
    std::vector<ChunkId> ids;
    ids.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        const std::size_t len = ChunkLen(blob.size(), chunk_bytes, c);
        const std::uint8_t* p = blob.data() + c * chunk_bytes;
        ids.push_back(ChunkId{Crc32c(p, len), Fnv1a64(p, len)});
    }
    return ids;
}

Blob
EncodeDelta(const Blob& blob, const std::vector<std::uint32_t>& changed,
            std::size_t chunk_bytes, std::size_t base_iteration) {
    const std::size_t num_chunks = NumChunks(blob.size(), chunk_bytes);
    Blob out;
    const std::size_t bitmap_bytes = (num_chunks + 7) / 8;
    std::size_t payload = 0;
    for (const std::uint32_t c : changed) {
        payload += ChunkLen(blob.size(), chunk_bytes, c);
    }
    out.reserve(kHeaderBytes + bitmap_bytes + payload);
    out.insert(out.end(), kMagic, kMagic + 4);
    PutU32(out, kVersion);
    PutU64(out, blob.size());
    PutU64(out, base_iteration);
    PutU32(out, static_cast<std::uint32_t>(chunk_bytes));
    PutU32(out, static_cast<std::uint32_t>(num_chunks));
    PutU32(out, static_cast<std::uint32_t>(changed.size()));
    out.resize(out.size() + bitmap_bytes, 0);
    std::uint8_t* bitmap = out.data() + kHeaderBytes;
    std::uint32_t prev = 0;
    bool first = true;
    for (const std::uint32_t c : changed) {
        if (c >= num_chunks || (!first && c <= prev)) {
            throw std::invalid_argument(
                "changed chunk indices must be ascending and in range");
        }
        bitmap[c / 8] |= static_cast<std::uint8_t>(1U << (c % 8));
        prev = c;
        first = false;
    }
    for (const std::uint32_t c : changed) {
        const std::uint8_t* p = blob.data() + std::size_t{c} * chunk_bytes;
        out.insert(out.end(), p,
                   p + ChunkLen(blob.size(), chunk_bytes, c));
    }
    return out;
}

DeltaRecord
ParseDelta(const Blob& record) {
    if (record.size() < kHeaderBytes) {
        Malformed("truncated header");
    }
    if (std::memcmp(record.data(), kMagic, 4) != 0) {
        Malformed("bad magic");
    }
    if (GetU32(record, 4) != kVersion) {
        Malformed("unknown version");
    }
    DeltaRecord r;
    r.logical_bytes = GetU64(record, 8);
    r.base_iteration = static_cast<std::size_t>(GetU64(record, 16));
    r.chunk_bytes = GetU32(record, 24);
    r.num_chunks = GetU32(record, 28);
    const std::size_t changed_count = GetU32(record, 32);
    if (r.chunk_bytes == 0) {
        Malformed("zero chunk size");
    }
    if (r.num_chunks != NumChunks(r.logical_bytes, r.chunk_bytes)) {
        Malformed("chunk count does not match logical size");
    }
    if (changed_count > r.num_chunks) {
        Malformed("more changed chunks than chunks");
    }
    const std::size_t bitmap_bytes = (r.num_chunks + 7) / 8;
    if (record.size() < kHeaderBytes + bitmap_bytes) {
        Malformed("truncated bitmap");
    }
    const std::uint8_t* bitmap = record.data() + kHeaderBytes;
    std::size_t payload = 0;
    r.changed.reserve(changed_count);
    for (std::size_t c = 0; c < r.num_chunks; ++c) {
        if ((bitmap[c / 8] >> (c % 8)) & 1U) {
            r.changed.push_back(static_cast<std::uint32_t>(c));
            payload += ChunkLen(r.logical_bytes, r.chunk_bytes, c);
        }
    }
    if (r.changed.size() != changed_count) {
        Malformed("bitmap popcount disagrees with changed_count");
    }
    r.payload_offset = kHeaderBytes + bitmap_bytes;
    if (record.size() != r.payload_offset + payload) {
        Malformed("payload length does not match bitmap");
    }
    return r;
}

Blob
ApplyDelta(const Blob& record, const Blob& base) {
    const DeltaRecord r = ParseDelta(record);
    if (base.size() != r.logical_bytes) {
        throw std::invalid_argument(
            "delta record: base size " + std::to_string(base.size()) +
            " does not match logical size " + std::to_string(r.logical_bytes));
    }
    Blob out = base;
    std::size_t src = r.payload_offset;
    for (const std::uint32_t c : r.changed) {
        const std::size_t len = ChunkLen(r.logical_bytes, r.chunk_bytes, c);
        std::memcpy(out.data() + std::size_t{c} * r.chunk_bytes,
                    record.data() + src, len);
        src += len;
    }
    return out;
}

std::string
DeltaShardKey(const std::string& key, std::size_t iteration) {
    return VersionedShardKey(key, iteration) + ".delta";
}

}  // namespace moc
