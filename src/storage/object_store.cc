#include "storage/object_store.h"

// Interface-only translation unit: anchors the vtable.
