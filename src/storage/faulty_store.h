#ifndef MOC_STORAGE_FAULTY_STORE_H_
#define MOC_STORAGE_FAULTY_STORE_H_

/**
 * @file
 * Seeded storage-fault injection: an ObjectStore decorator that damages the
 * I/O path the way real checkpoint backends fail (docs/FAULT_MODEL.md) —
 * transient errors, latency spikes, torn/truncated writes, silent bit rot,
 * and writes that report success but never land. Every decision flows from
 * one seeded Rng so a faulty run replays exactly from its seed.
 *
 * The decorator stays inert until a StorageFaultProfile is armed, so a
 * training loop can scope faults to an iteration window via
 * StorageFaultSchedule (src/faults/storage_faults.h).
 */

#include <cstdint>
#include <mutex>
#include <string>

#include "storage/object_store.h"
#include "storage/store_error.h"
#include "util/clock.h"
#include "util/rng.h"

namespace moc {

/**
 * Per-operation fault probabilities (each in [0, 1], checked on Arm).
 * Silent faults (torn_write, bit_flip, lost_write) report success to the
 * writer and are only observable on a later read; loud faults throw
 * StoreError at the call site.
 */
struct StorageFaultProfile {
    /** Put throws StoreError{kTransient} (write failed loudly). */
    double put_transient_error = 0.0;
    /** Get throws StoreError{kTransient} (read failed loudly). */
    double get_transient_error = 0.0;
    /** Put silently stores a truncated blob (torn write / partial save). */
    double torn_write = 0.0;
    /** Put silently stores the blob with one random bit flipped (bit rot). */
    double bit_flip = 0.0;
    /** Put silently stores nothing; the old version (if any) survives. */
    double lost_write = 0.0;
    /** Get returns a copy with one random bit flipped (store intact). */
    double read_corrupt = 0.0;
    /** Either op first sleeps latency_spike_seconds (checkpoint stall). */
    double latency_spike = 0.0;
    Seconds latency_spike_seconds = 0.0;

    /** True if any probability is positive. */
    bool Active() const;
};

/** Count of injected faults per class, for assertions and reports. */
struct InjectedFaultCounts {
    std::uint64_t transient_errors = 0;
    std::uint64_t torn_writes = 0;
    std::uint64_t bit_flips = 0;
    std::uint64_t lost_writes = 0;
    std::uint64_t corrupt_reads = 0;
    std::uint64_t latency_spikes = 0;

    std::uint64_t Total() const {
        return transient_errors + torn_writes + bit_flips + lost_writes +
               corrupt_reads + latency_spikes;
    }
};

/**
 * Fault-injecting decorator over any ObjectStore. Thread-safe (the base
 * store guarantees its own safety; the injector's Rng and counters are
 * mutex-protected).
 *
 * Metadata operations (Contains/Erase/Keys/...) pass through unfaulted:
 * the modelled failure domain is the blob data path.
 */
class FaultyStore final : public ObjectStore {
  public:
    FaultyStore(ObjectStore& base, std::uint64_t seed);

    /** Starts injecting per @p profile. @throws std::invalid_argument. */
    void Arm(const StorageFaultProfile& profile);

    /** Stops injecting; the store becomes a transparent pass-through. */
    void Disarm();

    bool armed() const;

    /** Faults injected since construction. */
    InjectedFaultCounts injected() const;

    void Put(const std::string& key, Blob blob) override;
    std::optional<Blob> Get(const std::string& key) const override;
    bool Contains(const std::string& key) const override;
    void Erase(const std::string& key) override;
    std::vector<std::string> Keys() const override;
    Bytes TotalBytes() const override;
    std::size_t Count() const override;

  private:
    /** Draws one uniform; returns true with probability @p p. */
    bool Roll(double p) const;
    void MaybeLatencySpike(const char* op) const;

    ObjectStore& base_;
    mutable std::mutex mu_;
    mutable Rng rng_;
    StorageFaultProfile profile_;
    bool armed_ = false;
    mutable InjectedFaultCounts injected_;
};

}  // namespace moc

#endif  // MOC_STORAGE_FAULTY_STORE_H_
