#include "storage/memory_store.h"

#include "util/logging.h"

namespace moc {

void
MemoryStore::Put(const std::string& key, Blob blob) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(key);
    if (it != data_.end()) {
        total_bytes_ -= it->second.size();
        it->second = std::move(blob);
        total_bytes_ += it->second.size();
        return;
    }
    total_bytes_ += blob.size();
    data_.emplace(key, std::move(blob));
}

std::optional<Blob>
MemoryStore::Get(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(key);
    if (it == data_.end()) {
        return std::nullopt;
    }
    return it->second;
}

bool
MemoryStore::Contains(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_.count(key) > 0;
}

void
MemoryStore::Erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(key);
    if (it != data_.end()) {
        total_bytes_ -= it->second.size();
        data_.erase(it);
    }
}

std::vector<std::string>
MemoryStore::Keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> keys;
    keys.reserve(data_.size());
    for (const auto& [key, blob] : data_) {
        keys.push_back(key);
    }
    return keys;
}

Bytes
MemoryStore::TotalBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
}

std::size_t
MemoryStore::Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_.size();
}

void
MemoryStore::Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    data_.clear();
    total_bytes_ = 0;
}

NodeMemoryPool::NodeMemoryPool(std::size_t num_nodes) : failed_(num_nodes, false) {
    MOC_CHECK_ARG(num_nodes >= 1, "need at least one node");
    stores_.reserve(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i) {
        stores_.push_back(std::make_unique<MemoryStore>());
    }
}

MemoryStore&
NodeMemoryPool::Node(NodeId node) {
    MOC_CHECK_ARG(node < stores_.size(), "node out of range");
    return *stores_[node];
}

const MemoryStore&
NodeMemoryPool::Node(NodeId node) const {
    MOC_CHECK_ARG(node < stores_.size(), "node out of range");
    return *stores_[node];
}

void
NodeMemoryPool::FailNode(NodeId node) {
    MOC_CHECK_ARG(node < stores_.size(), "node out of range");
    stores_[node]->Clear();
    failed_[node] = true;
}

bool
NodeMemoryPool::IsFailed(NodeId node) const {
    MOC_CHECK_ARG(node < stores_.size(), "node out of range");
    return failed_[node];
}

void
NodeMemoryPool::RestartNode(NodeId node) {
    MOC_CHECK_ARG(node < stores_.size(), "node out of range");
    stores_[node]->Clear();
    failed_[node] = false;
}

Bytes
NodeMemoryPool::TotalBytes() const {
    Bytes total = 0;
    for (const auto& store : stores_) {
        total += store->TotalBytes();
    }
    return total;
}

}  // namespace moc
