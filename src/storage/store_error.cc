#include "storage/store_error.h"

namespace moc {

const char*
StoreErrorKindName(StoreErrorKind kind) {
    switch (kind) {
        case StoreErrorKind::kTransient:
            return "transient";
        case StoreErrorKind::kCorrupt:
            return "corrupt";
        case StoreErrorKind::kTimeout:
            return "timeout";
    }
    return "unknown";
}

StoreError::StoreError(StoreErrorKind kind, std::string key,
                       const std::string& what)
    : std::runtime_error("store error (" + std::string(StoreErrorKindName(kind)) +
                         (key.empty() ? "" : ", key " + key) + "): " + what),
      kind_(kind),
      key_(std::move(key)) {}

}  // namespace moc
