#ifndef MOC_SIM_PERF_MODEL_H_
#define MOC_SIM_PERF_MODEL_H_

/**
 * @file
 * The analytical iteration/checkpoint cost model (ASTRA-sim substitute).
 *
 * Computes, for a hybrid ZeRO-2 DP + EP (+TP) deployment of an MoE model:
 *  - T_F&B: compute (roofline) + MoE all-to-all + gradient all-reduce;
 *  - T_update: memory-bound optimizer update over the local partition;
 *  - per-rank snapshot/persist payloads for any PEC K under baseline or
 *    fully sharded plans (delegating to the core ShardingPlanner);
 *  - total persisted file size per checkpoint (Fig. 13f).
 */

#include "core/sharding.h"
#include "dist/inventory.h"
#include "dist/model_spec.h"
#include "dist/topology.h"
#include "sim/hardware.h"
#include "util/clock.h"

namespace moc {

/** One simulated training deployment. */
struct TrainingSetup {
    ModelSpec model;
    ParallelConfig parallel;
    std::size_t gpus_per_node = 8;
    GpuSpec gpu;
    /** Micro-batch per GPU, sequences. */
    std::size_t batch_per_gpu = 2;
    std::size_t seq_len = 2048;
    /** Micro-batches in flight per iteration (pipeline-parallel schedules). */
    std::size_t microbatches = 8;
    StateBytes bytes;
    /** CPU -> distributed-storage bandwidth per rank, bytes/s. */
    double persist_bandwidth = 0.5e9;
};

/**
 * Deterministic analytical model of one deployment.
 */
class PerfModel {
  public:
    explicit PerfModel(const TrainingSetup& setup);

    /** Forward + backward duration, communication included. */
    Seconds FbTime() const;

    /** Weight-update duration (memory-bound over the ZeRO-2 partition). */
    Seconds UpdateTime() const;

    /** Full iteration without checkpointing. */
    Seconds IterTime() const { return FbTime() + UpdateTime(); }

    /**
     * Bottleneck-rank payload of one checkpoint's snapshot/persist phase.
     * @param k experts saved per MoE layer (N for full checkpointing).
     * @param fully_sharded use EE+EN+AN plans rather than the baseline.
     */
    Bytes CheckpointBytesPerRank(std::size_t k, bool fully_sharded) const;

    /** Snapshot duration of the bottleneck rank. */
    Seconds SnapshotTime(std::size_t k, bool fully_sharded) const;

    /** Persist duration of the bottleneck rank. */
    Seconds PersistTime(std::size_t k, bool fully_sharded) const;

    /** Total bytes one checkpoint writes to the cluster filesystem. */
    Bytes PersistFileBytes(std::size_t k) const;

    const TrainingSetup& setup() const { return setup_; }
    const ModelStateInventory& inventory() const { return inventory_; }
    const RankTopology& topology() const { return topology_; }

    // --- exposed components (for breakdown tables) ---
    Seconds ComputeTime() const;
    Seconds AllToAllTime() const;
    Seconds GradSyncTime() const;

  private:
    /** Shard plan for a K-expert PEC event under the given strategy. */
    ShardPlan PlanFor(std::size_t k, bool fully_sharded) const;

    TrainingSetup setup_;
    RankTopology topology_;
    ModelStateInventory inventory_;
};

}  // namespace moc

#endif  // MOC_SIM_PERF_MODEL_H_
