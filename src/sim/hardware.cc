#include "sim/hardware.h"

namespace moc {

GpuSpec
A800() {
    GpuSpec gpu;
    gpu.name = "A800";
    gpu.peak_flops = 312e12;
    gpu.utilization = 0.20;
    gpu.snapshot_bandwidth = 1.0e9;
    gpu.hbm_bandwidth = 2.0e12;
    gpu.nvlink_bandwidth = 200.0e9;
    gpu.network_bandwidth = 25.0e9;
    return gpu;
}

GpuSpec
H100() {
    GpuSpec gpu;
    gpu.name = "H100";
    gpu.peak_flops = 989e12;
    gpu.utilization = 0.20;
    gpu.snapshot_bandwidth = 2.0e9;
    gpu.hbm_bandwidth = 3.35e12;
    gpu.nvlink_bandwidth = 450.0e9;
    gpu.network_bandwidth = 50.0e9;
    return gpu;
}

}  // namespace moc
