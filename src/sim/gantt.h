#ifndef MOC_SIM_GANTT_H_
#define MOC_SIM_GANTT_H_

/**
 * @file
 * ASCII timeline rendering of checkpointing iterations — the textual
 * equivalent of the paper's Fig. 3 / Fig. 9 timelines, for harness output
 * and quick eyeballing of overlap behaviour.
 */

#include <string>

#include "sim/timeline.h"

namespace moc {

/**
 * Renders one checkpointing iteration of @p timing as labelled bars,
 * e.g. for an async method:
 *
 *   F&B      |██████████████        |
 *   Update   |              █       |
 *   Snapshot |██████████████████    |   (overlapped with next F&B)
 *   Persist  |                  ████|   (background)
 *
 * @param width total characters of the bar area (>= 10).
 */
std::string RenderIterationGantt(const MethodTiming& timing, std::size_t width = 60);

}  // namespace moc

#endif  // MOC_SIM_GANTT_H_
