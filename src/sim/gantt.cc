#include "sim/gantt.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace moc {

namespace {

/** One bar: leading blanks, a filled span, trailing blanks. */
std::string
Bar(double start, double end, double total, std::size_t width) {
    const auto clamp_pos = [&](double t) {
        return static_cast<std::size_t>(
            std::clamp(t / total, 0.0, 1.0) * static_cast<double>(width));
    };
    const std::size_t begin = clamp_pos(start);
    const std::size_t finish = std::max(clamp_pos(end), begin);
    std::string bar(width, ' ');
    for (std::size_t i = begin; i < finish && i < width; ++i) {
        bar[i] = '#';
    }
    // Always show at least one cell for nonzero spans.
    if (end > start && finish == begin && begin < width) {
        bar[begin] = '#';
    }
    return "|" + bar + "|";
}

}  // namespace

std::string
RenderIterationGantt(const MethodTiming& timing, std::size_t width) {
    MOC_CHECK_ARG(width >= 10, "gantt width must be >= 10");
    std::ostringstream os;
    const bool blocking = timing.method == "Baseline";
    // Horizon: the full iteration (plus background persist tail for async).
    const double persist_start =
        blocking ? timing.t_fb + timing.t_update + timing.t_snapshot
                 : timing.t_snapshot;
    const double total = std::max(timing.iteration, persist_start + timing.t_persist);

    os << timing.method << " (iteration " << timing.iteration << " s, O_save "
       << timing.o_save << " s)\n";
    if (blocking) {
        const double fb_end = timing.t_fb;
        const double up_end = fb_end + timing.t_update;
        const double snap_end = up_end + timing.t_snapshot;
        const double persist_end = snap_end + timing.t_persist;
        os << "  F&B      " << Bar(0.0, fb_end, total, width) << "\n";
        os << "  Update   " << Bar(fb_end, up_end, total, width) << "\n";
        os << "  Snapshot " << Bar(up_end, snap_end, total, width) << " (blocking)\n";
        os << "  Persist  " << Bar(snap_end, persist_end, total, width)
           << " (blocking)\n";
    } else {
        // Async: snapshot starts with the next iteration's F&B; any excess
        // past the F&B window stalls the update.
        const double fb_end = timing.t_fb;
        const double snap_end = timing.t_snapshot;
        const double update_start = std::max(fb_end, snap_end);
        const double update_end = update_start + timing.t_update;
        const double persist_end = snap_end + timing.t_persist;
        os << "  F&B      " << Bar(0.0, fb_end, total, width) << "\n";
        os << "  Snapshot " << Bar(0.0, snap_end, total, width)
           << (timing.o_save > 0.0 ? " (stalls the update)" : " (fully overlapped)")
           << "\n";
        os << "  Update   " << Bar(update_start, update_end, total, width) << "\n";
        os << "  Persist  " << Bar(snap_end, persist_end, total, width)
           << " (background)\n";
    }
    return os.str();
}

}  // namespace moc
