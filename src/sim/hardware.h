#ifndef MOC_SIM_HARDWARE_H_
#define MOC_SIM_HARDWARE_H_

/**
 * @file
 * Hardware presets for the analytical performance simulator (the ASTRA-sim
 * substitute of Section 6.2.4). The A800/H100 parameters follow the paper:
 * 312/989 TFLOPS at 20% utilization, 1/2 GB/s GPU-to-CPU snapshot bandwidth.
 */

#include <string>

#include "util/bytes.h"

namespace moc {

/** Performance-relevant characteristics of one GPU model. */
struct GpuSpec {
    std::string name;
    /** Peak dense throughput, FLOP/s. */
    double peak_flops = 312e12;
    /** Achieved fraction of peak in end-to-end training. */
    double utilization = 0.20;
    /** GPU -> CPU (PCIe) snapshot bandwidth, bytes/s. */
    double snapshot_bandwidth = 1.0 * kGiB;
    /** HBM bandwidth, bytes/s (drives the optimizer-update time). */
    double hbm_bandwidth = 2.0e12;
    /** Intra-node link (NVLink) bandwidth per GPU, bytes/s. */
    double nvlink_bandwidth = 200.0 * kGiB;
    /** Inter-node network bandwidth per GPU, bytes/s. */
    double network_bandwidth = 25.0 * kGiB;

    /** Effective training throughput, FLOP/s. */
    double EffectiveFlops() const { return peak_flops * utilization; }
};

/** A800-SXM4-80GB as configured in the paper's simulations. */
GpuSpec A800();

/** H100 as configured in the paper's simulations. */
GpuSpec H100();

}  // namespace moc

#endif  // MOC_SIM_HARDWARE_H_
