#include "sim/perf_model.h"

#include <memory>

#include "core/pec.h"
#include "core/selection.h"
#include "util/logging.h"

namespace moc {

PerfModel::PerfModel(const TrainingSetup& setup)
    : setup_(setup),
      topology_(setup.parallel, setup.gpus_per_node),
      inventory_(setup.model, setup.bytes) {
    MOC_CHECK_ARG(setup.batch_per_gpu >= 1 && setup.seq_len >= 1,
                  "batch and sequence length must be >= 1");
    MOC_CHECK_ARG(setup.model.num_experts % setup.parallel.ep == 0,
                  "ep must divide the number of experts");
}

Seconds
PerfModel::ComputeTime() const {
    const ModelSpec& m = setup_.model;
    const double tokens =
        static_cast<double>(setup_.batch_per_gpu) * static_cast<double>(setup_.seq_len);
    // Active parameters per token: non-expert parts plus top_k experts per
    // MoE layer (the sparsity of the MoE forward/backward).
    const double p_active =
        static_cast<double>(m.NonExpertParams()) +
        static_cast<double>(m.NumMoeLayers()) *
            static_cast<double>(std::min(m.top_k, m.num_experts)) *
            static_cast<double>(m.FfnParams());
    // 6 FLOPs per active parameter per token (fwd 2x + bwd 4x), plus the
    // attention score/context term: ~12 * L * h * s per token.
    const double flops_per_token =
        6.0 * p_active + 12.0 * static_cast<double>(m.num_layers) *
                             static_cast<double>(m.hidden) *
                             static_cast<double>(setup_.seq_len);
    // Tensor parallelism splits each layer's math; pipeline parallelism
    // splits the layers across stages.
    const double per_gpu =
        tokens * flops_per_token /
        static_cast<double>(setup_.parallel.tp * setup_.parallel.pp);
    return per_gpu / setup_.gpu.EffectiveFlops();
}

Seconds
PerfModel::AllToAllTime() const {
    const ModelSpec& m = setup_.model;
    if (m.NumMoeLayers() == 0 || setup_.parallel.ep <= 1) {
        return 0.0;
    }
    const double tokens =
        static_cast<double>(setup_.batch_per_gpu) * static_cast<double>(setup_.seq_len);
    // Dispatch + combine in forward, mirrored in backward: 4 all-to-alls per
    // MoE layer, each moving the activations once; a fraction (ep-1)/ep
    // actually crosses the wire.
    const double bytes_per_a2a = tokens * static_cast<double>(m.hidden) * 2.0 *
                                 static_cast<double>(setup_.parallel.ep - 1) /
                                 static_cast<double>(setup_.parallel.ep);
    // EP confined within a node rides NVLink; otherwise the network.
    const std::size_t ep_span_gpus = setup_.parallel.ep * setup_.parallel.tp;
    const bool intra_node = ep_span_gpus <= setup_.gpus_per_node;
    const double bw = intra_node ? setup_.gpu.nvlink_bandwidth
                                 : setup_.gpu.network_bandwidth;
    // Per-peer message overhead: at large EP degrees the all-to-all becomes
    // latency-bound (each GPU exchanges one small message with every peer),
    // which is what makes F&B grow with scale in Fig. 13.
    const double per_message = intra_node ? 2e-6 : 25e-6;
    const double latency =
        per_message * static_cast<double>(setup_.parallel.ep - 1);
    return static_cast<double>(m.NumMoeLayers()) * 4.0 *
           (bytes_per_a2a / bw + latency);
}

Seconds
PerfModel::GradSyncTime() const {
    const ModelSpec& m = setup_.model;
    if (setup_.parallel.dp <= 1) {
        return 0.0;
    }
    // ZeRO-2 reduce-scatter of bf16 gradients: non-expert grads across all
    // DP ranks, expert grads across the EP-group replicas.
    const double groups = static_cast<double>(topology_.NumEpGroups());
    const double dp = static_cast<double>(setup_.parallel.dp);
    const double ne_bytes = static_cast<double>(m.NonExpertParams()) * 2.0 *
                            (dp - 1.0) / dp;
    const double local_expert_params =
        static_cast<double>(m.ExpertParams()) / static_cast<double>(setup_.parallel.ep);
    const double e_bytes =
        groups > 1.0 ? local_expert_params * 2.0 * (groups - 1.0) / groups : 0.0;
    const bool intra_node =
        setup_.parallel.dp * setup_.parallel.tp <= setup_.gpus_per_node;
    const double bw = intra_node ? setup_.gpu.nvlink_bandwidth
                                 : setup_.gpu.network_bandwidth;
    // Ring reduce-scatter latency: one step per participant.
    const double per_step = intra_node ? 1e-6 : 10e-6;
    return (ne_bytes + e_bytes) / bw + per_step * (dp - 1.0);
}

Seconds
PerfModel::FbTime() const {
    // Pipeline parallelism adds the classic bubble: with p stages and m
    // micro-batches, (p - 1) of (m + p - 1) slots are idle.
    const double p = static_cast<double>(setup_.parallel.pp);
    const double m = static_cast<double>(std::max<std::size_t>(1, setup_.microbatches));
    const double bubble = p > 1.0 ? (m + p - 1.0) / m : 1.0;
    return (ComputeTime() + AllToAllTime()) * bubble + GradSyncTime();
}

Seconds
PerfModel::UpdateTime() const {
    const ModelSpec& m = setup_.model;
    // Each rank updates its ZeRO-2 optimizer partition; memory-bound:
    // read weights+optimizer, write back.
    const double groups = static_cast<double>(topology_.NumEpGroups());
    const double local_params =
        static_cast<double>(m.NonExpertParams()) / static_cast<double>(setup_.parallel.dp) +
        static_cast<double>(m.ExpertParams()) /
            static_cast<double>(setup_.parallel.ep) / groups;
    const double bytes_touched =
        local_params * 2.0 * static_cast<double>(setup_.bytes.weight + setup_.bytes.optim);
    return bytes_touched / setup_.gpu.hbm_bandwidth;
}

ShardPlan
PerfModel::PlanFor(std::size_t k, bool fully_sharded) const {
    ShardingOptions options;
    options.equal_expert = fully_sharded;
    options.equal_nonexpert = fully_sharded;
    options.adaptive_nonexpert = fully_sharded;
    ShardingPlanner planner(inventory_, topology_, options);
    if (k >= setup_.model.num_experts) {
        return planner.PlanFull();
    }
    SequentialSelector selector(setup_.model.num_experts);
    std::vector<std::vector<ExpertId>> sel(setup_.model.NumMoeLayers());
    for (std::size_t m = 0; m < sel.size(); ++m) {
        sel[m] = selector.Select(/*ckpt_index=*/0, m, k);
    }
    return planner.Plan(sel, sel);
}

Bytes
PerfModel::CheckpointBytesPerRank(std::size_t k, bool fully_sharded) const {
    return PlanFor(k, fully_sharded).BottleneckBytes();
}

Seconds
PerfModel::SnapshotTime(std::size_t k, bool fully_sharded) const {
    return static_cast<double>(CheckpointBytesPerRank(k, fully_sharded)) /
           setup_.gpu.snapshot_bandwidth;
}

Seconds
PerfModel::PersistTime(std::size_t k, bool fully_sharded) const {
    return static_cast<double>(CheckpointBytesPerRank(k, fully_sharded)) /
           setup_.persist_bandwidth;
}

Bytes
PerfModel::PersistFileBytes(std::size_t k) const {
    // Total durable volume per checkpoint: sharding does not change the sum,
    // PEC does.
    return PlanFor(k, /*fully_sharded=*/true).TotalBytes();
}

}  // namespace moc
