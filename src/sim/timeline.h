#ifndef MOC_SIM_TIMELINE_H_
#define MOC_SIM_TIMELINE_H_

/**
 * @file
 * Iteration timelines under the three checkpointing methods compared in
 * Figures 12 and 13: blocking baseline, Base-Async (asynchronous but
 * unsharded/full), and MoC-Async (asynchronous + PEC + fully sharded).
 */

#include <string>

#include "sim/perf_model.h"

namespace moc {

/** The three methods of Fig. 12. */
enum class CkptMethod { kBaseline, kBaseAsync, kMocAsync };

/** Timing breakdown of one checkpointing iteration. */
struct MethodTiming {
    std::string method;
    Seconds t_fb = 0.0;
    Seconds t_update = 0.0;
    Seconds t_snapshot = 0.0;
    Seconds t_persist = 0.0;
    /** Duration of a training iteration that performs a checkpoint. */
    Seconds iteration = 0.0;
    /** Overhead beyond F&B + update (O_save). */
    Seconds o_save = 0.0;
    /** Snapshot time hidden under the next F&B. */
    Seconds overlap = 0.0;
    /** Minimum checkpoint interval so persist never backlogs (iterations). */
    double i_ckpt_min = 1.0;
};

/**
 * Simulates one checkpointing iteration.
 * @param k_moc experts per layer MoC-Async saves (ignored by other methods,
 *        which always save all experts).
 */
MethodTiming SimulateMethod(const PerfModel& model, CkptMethod method,
                            std::size_t k_moc);

/** Convenience: all three methods. */
std::vector<MethodTiming> SimulateAllMethods(const PerfModel& model,
                                             std::size_t k_moc);

}  // namespace moc

#endif  // MOC_SIM_TIMELINE_H_
