#include "sim/timeline.h"

#include <algorithm>
#include <cmath>

#include "core/overhead.h"
#include "util/logging.h"

namespace moc {

MethodTiming
SimulateMethod(const PerfModel& model, CkptMethod method, std::size_t k_moc) {
    MethodTiming out;
    out.t_fb = model.FbTime();
    out.t_update = model.UpdateTime();
    const std::size_t n = model.setup().model.num_experts;
    const Seconds normal_iter = out.t_fb + out.t_update;

    switch (method) {
        case CkptMethod::kBaseline: {
            out.method = "Baseline";
            // Blocking: both phases stall training; baseline sharding means
            // the bottleneck rank carries the unbalanced payload.
            out.t_snapshot = model.SnapshotTime(n, /*fully_sharded=*/false);
            out.t_persist = model.PersistTime(n, /*fully_sharded=*/false);
            out.o_save = out.t_snapshot + out.t_persist;
            out.iteration = normal_iter + out.o_save;
            out.overlap = 0.0;
            out.i_ckpt_min = 1.0;
            break;
        }
        case CkptMethod::kBaseAsync: {
            out.method = "Base-Async";
            // Asynchronous but full-size, baseline sharding: the snapshot
            // overlaps the next F&B; any excess stalls the weight update.
            out.t_snapshot = model.SnapshotTime(n, /*fully_sharded=*/false);
            out.t_persist = model.PersistTime(n, /*fully_sharded=*/false);
            out.o_save = SnapshotStall(out.t_snapshot, out.t_fb);
            out.overlap = std::min(out.t_snapshot, out.t_fb);
            out.iteration = normal_iter + out.o_save;
            out.i_ckpt_min =
                std::max(1.0, std::ceil(out.t_persist / normal_iter));
            break;
        }
        case CkptMethod::kMocAsync: {
            out.method = "MoC-Async";
            MOC_CHECK_ARG(k_moc >= 1 && k_moc <= n, "k_moc must be in [1, N]");
            out.t_snapshot = model.SnapshotTime(k_moc, /*fully_sharded=*/true);
            out.t_persist = model.PersistTime(k_moc, /*fully_sharded=*/true);
            out.o_save = SnapshotStall(out.t_snapshot, out.t_fb);
            out.overlap = std::min(out.t_snapshot, out.t_fb);
            out.iteration = normal_iter + out.o_save;
            out.i_ckpt_min =
                std::max(1.0, std::ceil(out.t_persist / normal_iter));
            break;
        }
    }
    return out;
}

std::vector<MethodTiming>
SimulateAllMethods(const PerfModel& model, std::size_t k_moc) {
    return {SimulateMethod(model, CkptMethod::kBaseline, k_moc),
            SimulateMethod(model, CkptMethod::kBaseAsync, k_moc),
            SimulateMethod(model, CkptMethod::kMocAsync, k_moc)};
}

}  // namespace moc
