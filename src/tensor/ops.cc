#include "tensor/ops.h"

#include <cmath>

#include "util/logging.h"

namespace moc {

namespace {

void
CheckRank2(const Tensor& t, const char* what) {
    MOC_CHECK_ARG(t.rank() == 2, what << " requires rank-2 tensors");
}

}  // namespace

Tensor
MatMul(const Tensor& a, const Tensor& b) {
    CheckRank2(a, "MatMul");
    CheckRank2(b, "MatMul");
    const std::size_t m = a.dim(0);
    const std::size_t k = a.dim(1);
    const std::size_t n = b.dim(1);
    MOC_CHECK_ARG(b.dim(0) == k, "MatMul: inner dimensions differ ("
                                     << k << " vs " << b.dim(0) << ")");
    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const float av = pa[i * k + p];
            if (av == 0.0F) {
                continue;
            }
            const float* brow = pb + p * n;
            float* crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                crow[j] += av * brow[j];
            }
        }
    }
    return c;
}

Tensor
MatMulTransA(const Tensor& a, const Tensor& b) {
    CheckRank2(a, "MatMulTransA");
    CheckRank2(b, "MatMulTransA");
    const std::size_t k = a.dim(0);
    const std::size_t m = a.dim(1);
    const std::size_t n = b.dim(1);
    MOC_CHECK_ARG(b.dim(0) == k, "MatMulTransA: leading dimensions differ");
    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (std::size_t p = 0; p < k; ++p) {
        const float* arow = pa + p * m;
        const float* brow = pb + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0F) {
                continue;
            }
            float* crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                crow[j] += av * brow[j];
            }
        }
    }
    return c;
}

Tensor
MatMulTransB(const Tensor& a, const Tensor& b) {
    CheckRank2(a, "MatMulTransB");
    CheckRank2(b, "MatMulTransB");
    const std::size_t m = a.dim(0);
    const std::size_t n = a.dim(1);
    const std::size_t k = b.dim(0);
    MOC_CHECK_ARG(b.dim(1) == n, "MatMulTransB: trailing dimensions differ");
    Tensor c({m, k});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = pa + i * n;
        for (std::size_t p = 0; p < k; ++p) {
            const float* brow = pb + p * n;
            double acc = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
                acc += static_cast<double>(arow[j]) * static_cast<double>(brow[j]);
            }
            pc[i * k + p] = static_cast<float>(acc);
        }
    }
    return c;
}

Tensor
Add(const Tensor& a, const Tensor& b) {
    MOC_CHECK_ARG(a.shape() == b.shape(), "Add: shape mismatch");
    Tensor c = a;
    float* pc = c.data();
    const float* pb = b.data();
    for (std::size_t i = 0; i < c.size(); ++i) {
        pc[i] += pb[i];
    }
    return c;
}

void
Axpy(Tensor& a, const Tensor& b, float scale) {
    MOC_CHECK_ARG(a.shape() == b.shape(), "Axpy: shape mismatch");
    float* pa = a.data();
    const float* pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
        pa[i] += scale * pb[i];
    }
}

Tensor
Mul(const Tensor& a, const Tensor& b) {
    MOC_CHECK_ARG(a.shape() == b.shape(), "Mul: shape mismatch");
    Tensor c = a;
    float* pc = c.data();
    const float* pb = b.data();
    for (std::size_t i = 0; i < c.size(); ++i) {
        pc[i] *= pb[i];
    }
    return c;
}

Tensor
Scale(const Tensor& a, float scale) {
    Tensor c = a;
    float* pc = c.data();
    for (std::size_t i = 0; i < c.size(); ++i) {
        pc[i] *= scale;
    }
    return c;
}

void
AddRowBias(Tensor& x, const Tensor& bias) {
    CheckRank2(x, "AddRowBias");
    MOC_CHECK_ARG(bias.rank() == 1 && bias.dim(0) == x.dim(1),
                  "AddRowBias: bias shape mismatch");
    const std::size_t m = x.dim(0);
    const std::size_t n = x.dim(1);
    float* px = x.data();
    const float* pb = bias.data();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            px[i * n + j] += pb[j];
        }
    }
}

Tensor
SumRows(const Tensor& g) {
    CheckRank2(g, "SumRows");
    const std::size_t m = g.dim(0);
    const std::size_t n = g.dim(1);
    Tensor out({n});
    const float* pg = g.data();
    float* po = out.data();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            po[j] += pg[i * n + j];
        }
    }
    return out;
}

Tensor
RowSoftmax(const Tensor& x) {
    CheckRank2(x, "RowSoftmax");
    const std::size_t m = x.dim(0);
    const std::size_t n = x.dim(1);
    Tensor y({m, n});
    const float* px = x.data();
    float* py = y.data();
    for (std::size_t i = 0; i < m; ++i) {
        const float* row = px + i * n;
        float mx = row[0];
        for (std::size_t j = 1; j < n; ++j) {
            mx = std::max(mx, row[j]);
        }
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const double e = std::exp(static_cast<double>(row[j] - mx));
            py[i * n + j] = static_cast<float>(e);
            sum += e;
        }
        const float inv = static_cast<float>(1.0 / sum);
        for (std::size_t j = 0; j < n; ++j) {
            py[i * n + j] *= inv;
        }
    }
    return y;
}

Tensor
RowSoftmaxBackward(const Tensor& y, const Tensor& dy) {
    MOC_CHECK_ARG(y.shape() == dy.shape(), "RowSoftmaxBackward: shape mismatch");
    CheckRank2(y, "RowSoftmaxBackward");
    const std::size_t m = y.dim(0);
    const std::size_t n = y.dim(1);
    Tensor dx({m, n});
    const float* py = y.data();
    const float* pdy = dy.data();
    float* pdx = dx.data();
    for (std::size_t i = 0; i < m; ++i) {
        double dot = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            dot += static_cast<double>(pdy[i * n + j]) * static_cast<double>(py[i * n + j]);
        }
        for (std::size_t j = 0; j < n; ++j) {
            pdx[i * n + j] = py[i * n + j] * (pdy[i * n + j] - static_cast<float>(dot));
        }
    }
    return dx;
}

namespace {

inline float
GeluScalar(float x) {
    constexpr float kC = 0.7978845608028654F;  // sqrt(2/pi)
    const float inner = kC * (x + 0.044715F * x * x * x);
    return 0.5F * x * (1.0F + std::tanh(inner));
}

inline float
GeluGradScalar(float x) {
    constexpr float kC = 0.7978845608028654F;
    const float x3 = x * x * x;
    const float inner = kC * (x + 0.044715F * x3);
    const float t = std::tanh(inner);
    const float sech2 = 1.0F - t * t;
    return 0.5F * (1.0F + t) + 0.5F * x * sech2 * kC * (1.0F + 3.0F * 0.044715F * x * x);
}

}  // namespace

Tensor
Gelu(const Tensor& x) {
    Tensor y = x;
    float* py = y.data();
    for (std::size_t i = 0; i < y.size(); ++i) {
        py[i] = GeluScalar(py[i]);
    }
    return y;
}

Tensor
GeluBackward(const Tensor& x, const Tensor& dy) {
    MOC_CHECK_ARG(x.shape() == dy.shape(), "GeluBackward: shape mismatch");
    Tensor dx = x;
    float* pdx = dx.data();
    const float* pdy = dy.data();
    const float* px = x.data();
    for (std::size_t i = 0; i < dx.size(); ++i) {
        pdx[i] = GeluGradScalar(px[i]) * pdy[i];
    }
    return dx;
}

Tensor
Relu(const Tensor& x) {
    Tensor y = x;
    float* py = y.data();
    for (std::size_t i = 0; i < y.size(); ++i) {
        py[i] = py[i] > 0.0F ? py[i] : 0.0F;
    }
    return y;
}

Tensor
ReluBackward(const Tensor& x, const Tensor& dy) {
    MOC_CHECK_ARG(x.shape() == dy.shape(), "ReluBackward: shape mismatch");
    Tensor dx = dy;
    float* pdx = dx.data();
    const float* px = x.data();
    for (std::size_t i = 0; i < dx.size(); ++i) {
        if (px[i] <= 0.0F) {
            pdx[i] = 0.0F;
        }
    }
    return dx;
}

Tensor
LayerNormForward(const Tensor& x, const Tensor& gain, const Tensor& bias,
                 std::vector<float>& mean, std::vector<float>& rstd, float eps) {
    CheckRank2(x, "LayerNormForward");
    const std::size_t m = x.dim(0);
    const std::size_t n = x.dim(1);
    MOC_CHECK_ARG(gain.rank() == 1 && gain.dim(0) == n, "LayerNorm: gain shape");
    MOC_CHECK_ARG(bias.rank() == 1 && bias.dim(0) == n, "LayerNorm: bias shape");
    mean.assign(m, 0.0F);
    rstd.assign(m, 0.0F);
    Tensor y({m, n});
    const float* px = x.data();
    const float* pg = gain.data();
    const float* pb = bias.data();
    float* py = y.data();
    for (std::size_t i = 0; i < m; ++i) {
        const float* row = px + i * n;
        double mu = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            mu += row[j];
        }
        mu /= static_cast<double>(n);
        double var = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const double d = row[j] - mu;
            var += d * d;
        }
        var /= static_cast<double>(n);
        const float rs = static_cast<float>(1.0 / std::sqrt(var + eps));
        mean[i] = static_cast<float>(mu);
        rstd[i] = rs;
        for (std::size_t j = 0; j < n; ++j) {
            const float norm = (row[j] - mean[i]) * rs;
            py[i * n + j] = norm * pg[j] + pb[j];
        }
    }
    return y;
}

Tensor
LayerNormBackward(const Tensor& x, const Tensor& dy, const Tensor& gain,
                  const std::vector<float>& mean, const std::vector<float>& rstd,
                  Tensor& dgain, Tensor& dbias) {
    CheckRank2(x, "LayerNormBackward");
    MOC_CHECK_ARG(x.shape() == dy.shape(), "LayerNormBackward: shape mismatch");
    const std::size_t m = x.dim(0);
    const std::size_t n = x.dim(1);
    MOC_ASSERT(mean.size() == m && rstd.size() == m, "LayerNormBackward: stale stats");
    Tensor dx({m, n});
    const float* px = x.data();
    const float* pdy = dy.data();
    const float* pg = gain.data();
    float* pdx = dx.data();
    float* pdg = dgain.data();
    float* pdb = dbias.data();
    for (std::size_t i = 0; i < m; ++i) {
        const float mu = mean[i];
        const float rs = rstd[i];
        double sum_dyg = 0.0;
        double sum_dyg_xhat = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const float xhat = (px[i * n + j] - mu) * rs;
            const float dyg = pdy[i * n + j] * pg[j];
            sum_dyg += dyg;
            sum_dyg_xhat += static_cast<double>(dyg) * xhat;
            pdg[j] += pdy[i * n + j] * xhat;
            pdb[j] += pdy[i * n + j];
        }
        const float inv_n = 1.0F / static_cast<float>(n);
        for (std::size_t j = 0; j < n; ++j) {
            const float xhat = (px[i * n + j] - mu) * rs;
            const float dyg = pdy[i * n + j] * pg[j];
            pdx[i * n + j] =
                rs * (dyg - static_cast<float>(sum_dyg) * inv_n -
                      xhat * static_cast<float>(sum_dyg_xhat) * inv_n);
        }
    }
    return dx;
}

double
CrossEntropy(const Tensor& logits, const std::vector<int>& targets, Tensor* dlogits) {
    CheckRank2(logits, "CrossEntropy");
    const std::size_t m = logits.dim(0);
    const std::size_t n = logits.dim(1);
    MOC_CHECK_ARG(targets.size() == m, "CrossEntropy: target count mismatch");
    Tensor probs = RowSoftmax(logits);
    const float* pp = probs.data();
    double loss = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < m; ++i) {
        const int t = targets[i];
        if (t == kIgnoreIndex) {
            continue;
        }
        MOC_CHECK_ARG(t >= 0 && static_cast<std::size_t>(t) < n,
                      "CrossEntropy: target out of range");
        loss -= std::log(std::max(1e-12, static_cast<double>(pp[i * n + t])));
        ++counted;
    }
    const double denom = counted ? static_cast<double>(counted) : 1.0;
    if (dlogits != nullptr) {
        *dlogits = probs;
        float* pd = dlogits->data();
        const float inv = static_cast<float>(1.0 / denom);
        for (std::size_t i = 0; i < m; ++i) {
            const int t = targets[i];
            if (t == kIgnoreIndex) {
                for (std::size_t j = 0; j < n; ++j) {
                    pd[i * n + j] = 0.0F;
                }
                continue;
            }
            pd[i * n + static_cast<std::size_t>(t)] -= 1.0F;
            for (std::size_t j = 0; j < n; ++j) {
                pd[i * n + j] *= inv;
            }
        }
    }
    return loss / denom;
}

std::vector<int>
RowArgmax(const Tensor& x) {
    CheckRank2(x, "RowArgmax");
    const std::size_t m = x.dim(0);
    const std::size_t n = x.dim(1);
    std::vector<int> out(m, 0);
    const float* px = x.data();
    for (std::size_t i = 0; i < m; ++i) {
        const float* row = px + i * n;
        std::size_t best = 0;
        for (std::size_t j = 1; j < n; ++j) {
            if (row[j] > row[best]) {
                best = j;
            }
        }
        out[i] = static_cast<int>(best);
    }
    return out;
}

}  // namespace moc
