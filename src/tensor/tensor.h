#ifndef MOC_TENSOR_TENSOR_H_
#define MOC_TENSOR_TENSOR_H_

/**
 * @file
 * A minimal dense float32 tensor with value semantics.
 *
 * This is the numeric substrate for the MoE training stack. It is
 * intentionally small: contiguous row-major storage, ranks 1–3, and exactly
 * the kernels transformer training needs. Heavy math lives in ops.h.
 */

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"

namespace moc {

/**
 * Dense row-major float32 tensor. Copying copies the data (value semantics);
 * the training stack moves tensors where sharing would matter.
 */
class Tensor {
  public:
    /** An empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor with @p shape. */
    explicit Tensor(std::vector<std::size_t> shape);

    /** Convenience: Tensor({2, 3}). */
    Tensor(std::initializer_list<std::size_t> shape);

    /** Builds a 1-D tensor from explicit values. */
    static Tensor FromVector(const std::vector<float>& values);

    /** Builds a 2-D tensor from explicit row-major values. */
    static Tensor FromValues(std::size_t rows, std::size_t cols,
                             const std::vector<float>& values);

    /** Gaussian init with the given @p stddev (mean 0). */
    static Tensor Randn(std::vector<std::size_t> shape, Rng& rng, float stddev = 1.0F);

    /** Uniform init in [lo, hi). */
    static Tensor RandUniform(std::vector<std::size_t> shape, Rng& rng, float lo, float hi);

    const std::vector<std::size_t>& shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Dimension @p i of the shape; checked. */
    std::size_t dim(std::size_t i) const;

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /** Flat element access, checked in debug builds. */
    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** 2-D element access; requires rank() == 2. */
    float& At(std::size_t r, std::size_t c);
    float At(std::size_t r, std::size_t c) const;

    /** 3-D element access; requires rank() == 3. */
    float& At(std::size_t a, std::size_t b, std::size_t c);
    float At(std::size_t a, std::size_t b, std::size_t c) const;

    /** Sets every element to zero. */
    void Zero();

    /** Fills with @p value. */
    void Fill(float value);

    /** Reinterprets the data with a new @p shape of identical element count. */
    Tensor Reshape(std::vector<std::size_t> shape) const;

    /** Returns row @p r of a rank-2 tensor as a copy. */
    Tensor Row(std::size_t r) const;

    /** Sum of all elements. */
    double Sum() const;

    /** Mean of all elements. */
    double Mean() const;

    /** L2 norm of all elements. */
    double Norm() const;

    /** True iff shapes and all elements are within @p tol of each other. */
    bool AllClose(const Tensor& other, float tol = 1e-5F) const;

    /** Debug string: shape plus a few leading values. */
    std::string ToString() const;

  private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

/** Number of elements implied by @p shape. */
std::size_t ShapeSize(const std::vector<std::size_t>& shape);

}  // namespace moc

#endif  // MOC_TENSOR_TENSOR_H_
