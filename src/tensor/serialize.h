#ifndef MOC_TENSOR_SERIALIZE_H_
#define MOC_TENSOR_SERIALIZE_H_

/**
 * @file
 * Tensor (de)serialization to byte blobs with CRC32 integrity, the wire
 * format used by the checkpoint engine.
 *
 * Layout: [u32 magic][u32 rank][u64 dim...][f32 data...][u32 crc]
 * where the crc covers everything before it.
 */

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace moc {

/** Serializes @p t into a self-describing blob. */
std::vector<std::uint8_t> SerializeTensor(const Tensor& t);

/**
 * Parses a blob produced by SerializeTensor.
 * @throws std::runtime_error on truncation, bad magic, or CRC mismatch.
 */
Tensor DeserializeTensor(const std::vector<std::uint8_t>& blob);

/** Size in bytes that SerializeTensor would produce for @p t. */
std::size_t SerializedTensorSize(const Tensor& t);

}  // namespace moc

#endif  // MOC_TENSOR_SERIALIZE_H_
