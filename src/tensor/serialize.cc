#include "tensor/serialize.h"

#include <cstring>
#include <stdexcept>

#include "util/crc32.h"
#include "util/logging.h"

namespace moc {

namespace {

constexpr std::uint32_t kMagic = 0x4D4F4354;  // "MOCT"

template <typename T>
void
Append(std::vector<std::uint8_t>& out, T value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T
ReadAt(const std::vector<std::uint8_t>& in, std::size_t& offset) {
    if (offset + sizeof(T) > in.size()) {
        throw std::runtime_error("DeserializeTensor: truncated blob");
    }
    T value;
    std::memcpy(&value, in.data() + offset, sizeof(T));
    offset += sizeof(T);
    return value;
}

}  // namespace

std::size_t
SerializedTensorSize(const Tensor& t) {
    return sizeof(std::uint32_t)                       // magic
           + sizeof(std::uint32_t)                     // rank
           + t.rank() * sizeof(std::uint64_t)          // dims
           + t.size() * sizeof(float)                  // data
           + sizeof(std::uint32_t);                    // crc
}

std::vector<std::uint8_t>
SerializeTensor(const Tensor& t) {
    std::vector<std::uint8_t> out;
    out.reserve(SerializedTensorSize(t));
    Append(out, kMagic);
    Append(out, static_cast<std::uint32_t>(t.rank()));
    for (std::size_t i = 0; i < t.rank(); ++i) {
        Append(out, static_cast<std::uint64_t>(t.dim(i)));
    }
    const auto* p = reinterpret_cast<const std::uint8_t*>(t.data());
    out.insert(out.end(), p, p + t.size() * sizeof(float));
    const std::uint32_t crc = Crc32(out.data(), out.size());
    Append(out, crc);
    return out;
}

Tensor
DeserializeTensor(const std::vector<std::uint8_t>& blob) {
    if (blob.size() < sizeof(std::uint32_t) * 3) {
        throw std::runtime_error("DeserializeTensor: blob too small");
    }
    const std::size_t payload = blob.size() - sizeof(std::uint32_t);
    std::uint32_t stored_crc;
    std::memcpy(&stored_crc, blob.data() + payload, sizeof(stored_crc));
    if (Crc32(blob.data(), payload) != stored_crc) {
        throw std::runtime_error("DeserializeTensor: CRC mismatch (corrupt blob)");
    }
    std::size_t offset = 0;
    const auto magic = ReadAt<std::uint32_t>(blob, offset);
    if (magic != kMagic) {
        throw std::runtime_error("DeserializeTensor: bad magic");
    }
    const auto rank = ReadAt<std::uint32_t>(blob, offset);
    std::vector<std::size_t> shape(rank);
    for (auto& d : shape) {
        d = static_cast<std::size_t>(ReadAt<std::uint64_t>(blob, offset));
    }
    Tensor t(shape);
    const std::size_t want = t.size() * sizeof(float);
    if (offset + want != payload) {
        throw std::runtime_error("DeserializeTensor: size mismatch");
    }
    std::memcpy(t.data(), blob.data() + offset, want);
    return t;
}

}  // namespace moc
