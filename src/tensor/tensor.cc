#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace moc {

std::size_t
ShapeSize(const std::vector<std::size_t>& shape) {
    std::size_t n = 1;
    for (auto d : shape) {
        n *= d;
    }
    return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
    data_.assign(ShapeSize(shape_), 0.0F);
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor
Tensor::FromVector(const std::vector<float>& values) {
    Tensor t({values.size()});
    t.data_ = values;
    return t;
}

Tensor
Tensor::FromValues(std::size_t rows, std::size_t cols, const std::vector<float>& values) {
    MOC_CHECK_ARG(values.size() == rows * cols, "FromValues: size mismatch");
    Tensor t({rows, cols});
    t.data_ = values;
    return t;
}

Tensor
Tensor::Randn(std::vector<std::size_t> shape, Rng& rng, float stddev) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) {
        v = static_cast<float>(rng.Gaussian(0.0, stddev));
    }
    return t;
}

Tensor
Tensor::RandUniform(std::vector<std::size_t> shape, Rng& rng, float lo, float hi) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) {
        v = static_cast<float>(rng.Uniform(lo, hi));
    }
    return t;
}

std::size_t
Tensor::dim(std::size_t i) const {
    MOC_ASSERT(i < shape_.size(), "dim index out of range");
    return shape_[i];
}

float&
Tensor::At(std::size_t r, std::size_t c) {
    MOC_ASSERT(rank() == 2 && r < shape_[0] && c < shape_[1], "2-D At out of range");
    return data_[r * shape_[1] + c];
}

float
Tensor::At(std::size_t r, std::size_t c) const {
    MOC_ASSERT(rank() == 2 && r < shape_[0] && c < shape_[1], "2-D At out of range");
    return data_[r * shape_[1] + c];
}

float&
Tensor::At(std::size_t a, std::size_t b, std::size_t c) {
    MOC_ASSERT(rank() == 3 && a < shape_[0] && b < shape_[1] && c < shape_[2],
               "3-D At out of range");
    return data_[(a * shape_[1] + b) * shape_[2] + c];
}

float
Tensor::At(std::size_t a, std::size_t b, std::size_t c) const {
    MOC_ASSERT(rank() == 3 && a < shape_[0] && b < shape_[1] && c < shape_[2],
               "3-D At out of range");
    return data_[(a * shape_[1] + b) * shape_[2] + c];
}

void
Tensor::Zero() {
    std::fill(data_.begin(), data_.end(), 0.0F);
}

void
Tensor::Fill(float value) {
    std::fill(data_.begin(), data_.end(), value);
}

Tensor
Tensor::Reshape(std::vector<std::size_t> shape) const {
    MOC_CHECK_ARG(ShapeSize(shape) == size(), "Reshape must preserve element count");
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = data_;
    return t;
}

Tensor
Tensor::Row(std::size_t r) const {
    MOC_CHECK_ARG(rank() == 2, "Row requires a rank-2 tensor");
    MOC_CHECK_ARG(r < shape_[0], "Row index out of range");
    Tensor t({shape_[1]});
    const std::size_t cols = shape_[1];
    for (std::size_t c = 0; c < cols; ++c) {
        t.data_[c] = data_[r * cols + c];
    }
    return t;
}

double
Tensor::Sum() const {
    double s = 0.0;
    for (float v : data_) {
        s += v;
    }
    return s;
}

double
Tensor::Mean() const {
    return data_.empty() ? 0.0 : Sum() / static_cast<double>(data_.size());
}

double
Tensor::Norm() const {
    double s = 0.0;
    for (float v : data_) {
        s += static_cast<double>(v) * static_cast<double>(v);
    }
    return std::sqrt(s);
}

bool
Tensor::AllClose(const Tensor& other, float tol) const {
    if (shape_ != other.shape_) {
        return false;
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (std::fabs(data_[i] - other.data_[i]) > tol) {
            return false;
        }
    }
    return true;
}

std::string
Tensor::ToString() const {
    std::ostringstream os;
    os << "Tensor(shape=[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        os << (i ? ", " : "") << shape_[i];
    }
    os << "], data=[";
    const std::size_t n = std::min<std::size_t>(data_.size(), 8);
    for (std::size_t i = 0; i < n; ++i) {
        os << (i ? ", " : "") << data_[i];
    }
    if (data_.size() > n) {
        os << ", ...";
    }
    os << "])";
    return os.str();
}

}  // namespace moc
