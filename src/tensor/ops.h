#ifndef MOC_TENSOR_OPS_H_
#define MOC_TENSOR_OPS_H_

/**
 * @file
 * Math kernels over Tensor: the exact set needed for transformer training
 * (forward and the corresponding gradient products).
 *
 * All matrix kernels operate on rank-2 tensors; the nn layer handles batch
 * flattening. Kernels are straightforward blocked loops — correctness and
 * determinism over raw speed.
 */

#include "tensor/tensor.h"

namespace moc {

/** C = A[m,k] * B[k,n]. */
Tensor MatMul(const Tensor& a, const Tensor& b);

/** C = A^T[k,m]^T... i.e. C[m,n] = A[k,m]^T * B[k,n]. Used for weight grads. */
Tensor MatMulTransA(const Tensor& a, const Tensor& b);

/** C[m,k] = A[m,n] * B[k,n]^T. Used for input grads. */
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/** out = a + b (same shape). */
Tensor Add(const Tensor& a, const Tensor& b);

/** a += scale * b (same shape). */
void Axpy(Tensor& a, const Tensor& b, float scale = 1.0F);

/** out = a * b elementwise (same shape). */
Tensor Mul(const Tensor& a, const Tensor& b);

/** out = scale * a. */
Tensor Scale(const Tensor& a, float scale);

/** Adds bias[n] to every row of x[m,n] in place. */
void AddRowBias(Tensor& x, const Tensor& bias);

/** Sums rows of g[m,n] into a vector [n]; the bias gradient. */
Tensor SumRows(const Tensor& g);

/** Row-wise softmax of x[m,n]. */
Tensor RowSoftmax(const Tensor& x);

/**
 * Gradient of row-wise softmax: given y = softmax(x) and upstream dy,
 * returns dx where dx_i = y_i * (dy_i - sum_j dy_j y_j) per row.
 */
Tensor RowSoftmaxBackward(const Tensor& y, const Tensor& dy);

/** GELU activation (tanh approximation), elementwise. */
Tensor Gelu(const Tensor& x);

/** dx = GeluBackward(x, dy): gradient through Gelu at pre-activation x. */
Tensor GeluBackward(const Tensor& x, const Tensor& dy);

/** ReLU activation, elementwise. */
Tensor Relu(const Tensor& x);

/** dx for ReLU at pre-activation x. */
Tensor ReluBackward(const Tensor& x, const Tensor& dy);

/**
 * Layer normalization over the last dimension of x[m,n] with learnable
 * gain/bias. Returns the normalized output; mean/rstd are written to the
 * caller's buffers (size m) for the backward pass.
 */
Tensor LayerNormForward(const Tensor& x, const Tensor& gain, const Tensor& bias,
                        std::vector<float>& mean, std::vector<float>& rstd,
                        float eps = 1e-5F);

/**
 * Backward of LayerNormForward. Accumulates parameter grads into
 * @p dgain / @p dbias and returns dx.
 */
Tensor LayerNormBackward(const Tensor& x, const Tensor& dy, const Tensor& gain,
                         const std::vector<float>& mean, const std::vector<float>& rstd,
                         Tensor& dgain, Tensor& dbias);

/**
 * Cross-entropy over logits[m, vocab] with integer targets[m].
 * Returns mean loss; writes dlogits (softmax - onehot)/m if non-null.
 * Target value kIgnoreIndex is skipped.
 */
inline constexpr int kIgnoreIndex = -1;
double CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    Tensor* dlogits);

/** Row-wise argmax of x[m,n] -> m indices. */
std::vector<int> RowArgmax(const Tensor& x);

}  // namespace moc

#endif  // MOC_TENSOR_OPS_H_
