#ifndef MOC_DIST_TOPOLOGY_H_
#define MOC_DIST_TOPOLOGY_H_

/**
 * @file
 * Distributed rank topology for hybrid ZeRO-2 DP + EP training (optionally
 * with TP/PP), mirroring the layouts of Figures 1 and 6 of the paper.
 *
 * The checkpointing view is organized around the DP dimension: non-expert
 * parameters are replicated across all `dp` ranks, expert parameters are
 * distributed across the `ep` ranks of each EP group and replicated across
 * the `dp / ep` EP groups, and ZeRO-2 partitions optimizer states across the
 * replicating ranks.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace moc {

/** Rank index within the DP dimension (what checkpointing shards over). */
using RankId = std::size_t;

/** Node (machine) index. */
using NodeId = std::size_t;

/** Expert index within one MoE layer. */
using ExpertId = std::size_t;

/** Parallel degrees of a hybrid training job. */
struct ParallelConfig {
    std::size_t dp = 1;  ///< data-parallel degree (ZeRO-2)
    std::size_t ep = 1;  ///< expert-parallel degree; must divide dp
    std::size_t tp = 1;  ///< tensor-parallel degree (modularity per DP rank)
    std::size_t pp = 1;  ///< pipeline-parallel degree

    /** Total number of devices. */
    std::size_t WorldSize() const { return dp * tp * pp; }
};

/**
 * The rank/node layout of one training job.
 */
class RankTopology {
  public:
    /**
     * @param parallel parallel degrees; `ep` must divide `dp`.
     * @param gpus_per_node devices per machine (node-failure granularity).
     */
    RankTopology(const ParallelConfig& parallel, std::size_t gpus_per_node);

    const ParallelConfig& parallel() const { return parallel_; }
    std::size_t dp() const { return parallel_.dp; }
    std::size_t ep() const { return parallel_.ep; }
    std::size_t gpus_per_node() const { return gpus_per_node_; }
    std::size_t num_nodes() const;

    /** Number of EP groups (= dp / ep); each holds a full expert replica. */
    std::size_t NumEpGroups() const { return parallel_.dp / parallel_.ep; }

    /** EP group that DP rank @p rank belongs to. */
    std::size_t EpGroup(RankId rank) const;

    /** Position of @p rank inside its EP group, in [0, ep). */
    std::size_t EpRank(RankId rank) const;

    /** DP rank at position @p ep_rank of EP group @p group. */
    RankId RankOf(std::size_t group, std::size_t ep_rank) const;

    /** Node hosting DP rank @p rank (assumes dp ranks laid out in order). */
    NodeId NodeOf(RankId rank) const;

    /** DP ranks hosted on @p node. */
    std::vector<RankId> RanksOn(NodeId node) const;

    /**
     * EP rank that owns expert @p expert of an N-expert MoE layer
     * (contiguous blocks: rank r owns experts [r*N/ep, (r+1)*N/ep)).
     * Requires ep to divide @p num_experts.
     */
    std::size_t OwnerEpRank(ExpertId expert, std::size_t num_experts) const;

    /** Experts per rank for an @p num_experts-expert layer. */
    std::size_t ExpertsPerRank(std::size_t num_experts) const;

    /** Experts owned by EP-rank @p ep_rank of an N-expert layer. */
    std::vector<ExpertId> ExpertsOf(std::size_t ep_rank, std::size_t num_experts) const;

    std::string ToString() const;

  private:
    ParallelConfig parallel_;
    std::size_t gpus_per_node_;
};

}  // namespace moc

#endif  // MOC_DIST_TOPOLOGY_H_
