#include "dist/topology.h"

#include <sstream>

#include "util/bytes.h"
#include "util/logging.h"

namespace moc {

RankTopology::RankTopology(const ParallelConfig& parallel, std::size_t gpus_per_node)
    : parallel_(parallel), gpus_per_node_(gpus_per_node) {
    MOC_CHECK_ARG(parallel.dp >= 1 && parallel.ep >= 1 && parallel.tp >= 1 &&
                      parallel.pp >= 1,
                  "parallel degrees must be >= 1");
    MOC_CHECK_ARG(parallel.dp % parallel.ep == 0,
                  "ep (" << parallel.ep << ") must divide dp (" << parallel.dp << ")");
    MOC_CHECK_ARG(gpus_per_node >= 1, "gpus_per_node must be >= 1");
}

std::size_t
RankTopology::num_nodes() const {
    return static_cast<std::size_t>(
        CeilDiv(parallel_.WorldSize(), gpus_per_node_));
}

std::size_t
RankTopology::EpGroup(RankId rank) const {
    MOC_CHECK_ARG(rank < parallel_.dp, "rank out of range");
    return rank / parallel_.ep;
}

std::size_t
RankTopology::EpRank(RankId rank) const {
    MOC_CHECK_ARG(rank < parallel_.dp, "rank out of range");
    return rank % parallel_.ep;
}

RankId
RankTopology::RankOf(std::size_t group, std::size_t ep_rank) const {
    MOC_CHECK_ARG(group < NumEpGroups(), "EP group out of range");
    MOC_CHECK_ARG(ep_rank < parallel_.ep, "EP rank out of range");
    return group * parallel_.ep + ep_rank;
}

NodeId
RankTopology::NodeOf(RankId rank) const {
    MOC_CHECK_ARG(rank < parallel_.dp, "rank out of range");
    // Each DP rank spans tp*pp devices; devices laid out DP-major.
    const std::size_t devices_per_dp_rank = parallel_.tp * parallel_.pp;
    return rank * devices_per_dp_rank / gpus_per_node_;
}

std::vector<RankId>
RankTopology::RanksOn(NodeId node) const {
    std::vector<RankId> out;
    for (RankId r = 0; r < parallel_.dp; ++r) {
        if (NodeOf(r) == node) {
            out.push_back(r);
        }
    }
    return out;
}

std::size_t
RankTopology::OwnerEpRank(ExpertId expert, std::size_t num_experts) const {
    MOC_CHECK_ARG(expert < num_experts, "expert out of range");
    MOC_CHECK_ARG(num_experts % parallel_.ep == 0,
                  "ep must divide the number of experts");
    return expert / (num_experts / parallel_.ep);
}

std::size_t
RankTopology::ExpertsPerRank(std::size_t num_experts) const {
    MOC_CHECK_ARG(num_experts % parallel_.ep == 0,
                  "ep must divide the number of experts");
    return num_experts / parallel_.ep;
}

std::vector<ExpertId>
RankTopology::ExpertsOf(std::size_t ep_rank, std::size_t num_experts) const {
    MOC_CHECK_ARG(ep_rank < parallel_.ep, "EP rank out of range");
    const std::size_t per_rank = ExpertsPerRank(num_experts);
    std::vector<ExpertId> out;
    out.reserve(per_rank);
    for (std::size_t i = 0; i < per_rank; ++i) {
        out.push_back(ep_rank * per_rank + i);
    }
    return out;
}

std::string
RankTopology::ToString() const {
    std::ostringstream os;
    os << "RankTopology(dp=" << parallel_.dp << ", ep=" << parallel_.ep
       << ", tp=" << parallel_.tp << ", pp=" << parallel_.pp
       << ", gpus/node=" << gpus_per_node_ << ", nodes=" << num_nodes() << ")";
    return os.str();
}

}  // namespace moc
