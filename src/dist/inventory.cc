#include "dist/inventory.h"

#include <sstream>

#include "util/logging.h"

namespace moc {

ModelStateInventory::ModelStateInventory(const ModelSpec& spec, const StateBytes& bytes)
    : spec_(spec), bytes_(bytes) {
    auto add = [this](ModuleState m) {
        if (m.kind == ModuleKind::kExpert) {
            expert_params_ += m.params;
        } else {
            nonexpert_params_ += m.params;
        }
        modules_.push_back(std::move(m));
    };

    add({"embedding", ModuleKind::kNonExpert, kNoIndex, kNoIndex, kNoIndex,
         spec.EmbeddingParams()});

    std::size_t moe_index = 0;
    expert_index_.resize(spec.NumMoeLayers());
    for (std::size_t l = 0; l < spec.num_layers; ++l) {
        {
            std::ostringstream key;
            key << "layer/" << l << "/ln";
            add({key.str(), ModuleKind::kNonExpert, l, kNoIndex, kNoIndex,
                 spec.LayerNormParams()});
        }
        {
            std::ostringstream key;
            key << "layer/" << l << "/attn";
            add({key.str(), ModuleKind::kNonExpert, l, kNoIndex, kNoIndex,
                 spec.AttentionParams()});
        }
        if (spec.IsMoeLayer(l)) {
            {
                std::ostringstream key;
                key << "moe/" << moe_index << "/gate";
                add({key.str(), ModuleKind::kNonExpert, l, moe_index, kNoIndex,
                     spec.GateParams()});
            }
            expert_index_[moe_index].resize(spec.num_experts);
            for (ExpertId e = 0; e < spec.num_experts; ++e) {
                std::ostringstream key;
                key << "moe/" << moe_index << "/expert/" << e;
                expert_index_[moe_index][e] = modules_.size();
                add({key.str(), ModuleKind::kExpert, l, moe_index, e,
                     spec.FfnParams()});
            }
            ++moe_index;
        } else {
            std::ostringstream key;
            key << "layer/" << l << "/ffn";
            add({key.str(), ModuleKind::kNonExpert, l, kNoIndex, kNoIndex,
                 spec.FfnParams()});
        }
    }
    add({"final_ln", ModuleKind::kNonExpert, kNoIndex, kNoIndex, kNoIndex,
         2 * spec.hidden});

    MOC_ASSERT(nonexpert_params_ == spec.NonExpertParams(),
               "inventory disagrees with ModelSpec non-expert count");
    MOC_ASSERT(expert_params_ == spec.ExpertParams(),
               "inventory disagrees with ModelSpec expert count");
}

std::vector<const ModuleState*>
ModelStateInventory::NonExpertModules() const {
    std::vector<const ModuleState*> out;
    for (const auto& m : modules_) {
        if (m.kind == ModuleKind::kNonExpert) {
            out.push_back(&m);
        }
    }
    return out;
}

std::vector<const ModuleState*>
ModelStateInventory::ExpertModules() const {
    std::vector<const ModuleState*> out;
    for (const auto& m : modules_) {
        if (m.kind == ModuleKind::kExpert) {
            out.push_back(&m);
        }
    }
    return out;
}

const ModuleState&
ModelStateInventory::ExpertModule(std::size_t moe_index, ExpertId expert) const {
    MOC_CHECK_ARG(moe_index < expert_index_.size(), "moe_index out of range");
    MOC_CHECK_ARG(expert < expert_index_[moe_index].size(), "expert out of range");
    return modules_[expert_index_[moe_index][expert]];
}

Bytes
ModelStateInventory::WeightBytes(const ModuleState& m) const {
    return static_cast<Bytes>(m.params) * bytes_.weight;
}

Bytes
ModelStateInventory::OptimBytes(const ModuleState& m) const {
    return static_cast<Bytes>(m.params) * bytes_.optim;
}

Bytes
ModelStateInventory::StateBytesOf(const ModuleState& m) const {
    return WeightBytes(m) + OptimBytes(m);
}

Bytes
ModelStateInventory::TotalStateBytes() const {
    return static_cast<Bytes>(TotalParams()) * (bytes_.weight + bytes_.optim);
}

}  // namespace moc
