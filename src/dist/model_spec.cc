#include "dist/model_spec.h"

#include "util/logging.h"

namespace moc {

std::size_t
ModelSpec::NumMoeLayers() const {
    if (num_experts == 0) {
        return 0;
    }
    std::size_t count = 0;
    for (std::size_t l = 0; l < num_layers; ++l) {
        if (IsMoeLayer(l)) {
            ++count;
        }
    }
    return count;
}

bool
ModelSpec::IsMoeLayer(std::size_t layer) const {
    if (num_experts == 0 || layer < moe_offset) {
        return false;
    }
    return (layer - moe_offset) % moe_every == 0;
}

std::size_t
ModelSpec::AttentionParams() const {
    const std::size_t proj_dim = num_heads * head_dim;
    // Q, K, V projections hidden -> proj_dim and output proj_dim -> hidden.
    return 3 * (hidden * proj_dim + proj_dim) + proj_dim * hidden + hidden;
}

std::size_t
ModelSpec::FfnParams() const {
    const std::size_t inter = ffn_mult * hidden;
    return hidden * inter + inter + inter * hidden + hidden;
}

std::size_t
ModelSpec::GateParams() const {
    return hidden * num_experts + num_experts;  // router linear + bias
}

std::size_t
ModelSpec::LayerNormParams() const {
    return 2 * 2 * hidden;  // two layernorms, gain + bias each
}

std::size_t
ModelSpec::EmbeddingParams() const {
    return vocab * hidden + max_seq * hidden;
}

std::size_t
ModelSpec::NonExpertParams() const {
    std::size_t total = EmbeddingParams();
    for (std::size_t l = 0; l < num_layers; ++l) {
        total += AttentionParams() + LayerNormParams();
        if (IsMoeLayer(l)) {
            total += GateParams();
        } else {
            total += FfnParams();
        }
    }
    total += 2 * hidden;  // final layernorm (lm head tied to embedding)
    return total;
}

std::size_t
ModelSpec::ExpertParams() const {
    return NumMoeLayers() * num_experts * FfnParams();
}

Bytes
FullCheckpointSize(const ModelSpec& spec, const StateBytes& bytes) {
    const Bytes per_param = bytes.weight + bytes.optim;
    return static_cast<Bytes>(spec.TotalParams()) * per_param;
}

Bytes
PecCheckpointSize(const ModelSpec& spec, const StateBytes& bytes, std::size_t k_pec) {
    MOC_CHECK_ARG(spec.num_experts > 0, "PEC applies to MoE models only");
    MOC_CHECK_ARG(k_pec >= 1 && k_pec <= spec.num_experts,
                  "k_pec must be in [1, num_experts]");
    const Bytes per_param = bytes.weight + bytes.optim;
    const Bytes ne = static_cast<Bytes>(spec.NonExpertParams()) * per_param;
    const Bytes e = static_cast<Bytes>(spec.ExpertParams()) * per_param;
    return ne + e * k_pec / spec.num_experts;
}

}  // namespace moc
