#ifndef MOC_DIST_MODEL_SPEC_H_
#define MOC_DIST_MODEL_SPEC_H_

/**
 * @file
 * Architecture hyperparameters and exact parameter counting for MoE
 * transformers (Table 1 of the paper, plus the LLaMA-like simulation models
 * of Section 6.2.4).
 */

#include <cstddef>
#include <string>

#include "util/bytes.h"

namespace moc {

/**
 * Hyperparameters of a (possibly MoE) transformer. MoE layers replace the
 * FFN in every `moe_every`-th transformer layer, starting at layer
 * `moe_offset`.
 */
struct ModelSpec {
    std::string name = "model";
    std::size_t num_layers = 12;
    std::size_t hidden = 768;
    std::size_t num_heads = 12;
    std::size_t head_dim = 64;       ///< usually hidden / num_heads
    std::size_t ffn_mult = 4;        ///< intermediate = ffn_mult * hidden
    std::size_t vocab = 50257;
    std::size_t max_seq = 2048;
    std::size_t num_experts = 8;     ///< experts per MoE layer (0 = dense model)
    std::size_t moe_every = 2;       ///< an MoE layer every k-th block
    std::size_t moe_offset = 1;      ///< first MoE block index
    std::size_t top_k = 1;           ///< gating top-k

    /** Number of MoE layers implied by the placement rule. */
    std::size_t NumMoeLayers() const;

    /** True iff block @p layer uses an MoE FFN. */
    bool IsMoeLayer(std::size_t layer) const;

    /** Parameters in one attention sublayer (qkv + out proj + biases). */
    std::size_t AttentionParams() const;

    /** Parameters in one FFN expert (two linear layers + biases). */
    std::size_t FfnParams() const;

    /** Parameters in one MoE gate (router linear). */
    std::size_t GateParams() const;

    /** Parameters in the two per-block layernorms. */
    std::size_t LayerNormParams() const;

    /** Embedding (+ positional) parameters. */
    std::size_t EmbeddingParams() const;

    /** Total non-expert parameters (P_ne in the paper). */
    std::size_t NonExpertParams() const;

    /** Total expert parameters (P_e in the paper). */
    std::size_t ExpertParams() const;

    /** All parameters. */
    std::size_t TotalParams() const { return NonExpertParams() + ExpertParams(); }
};

/** Bytes per parameter for weights and optimizer state. */
struct StateBytes {
    /** Weight bytes per parameter (bf16 training default). */
    std::size_t weight = 2;   ///< B_w
    /** Optimizer bytes per parameter (fp32 master + Adam m/v). */
    std::size_t optim = 12;   ///< B_o
};

/** C_full of Eq. 5: full checkpoint size. */
Bytes FullCheckpointSize(const ModelSpec& spec, const StateBytes& bytes);

/** C_pec of Eq. 6: PEC checkpoint size with @p k_pec experts saved per layer. */
Bytes PecCheckpointSize(const ModelSpec& spec, const StateBytes& bytes,
                        std::size_t k_pec);

}  // namespace moc

#endif  // MOC_DIST_MODEL_SPEC_H_
