#ifndef MOC_DIST_INVENTORY_H_
#define MOC_DIST_INVENTORY_H_

/**
 * @file
 * ModelStateInventory: the per-module accounting of checkpointable state that
 * every sharding planner and size analysis operates on.
 *
 * Each entry is one indivisible checkpointing unit — the paper shards the
 * non-expert part at layer granularity (Section 4.2) and the expert part at
 * expert granularity (Section 4.1), so those are exactly our units.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "dist/model_spec.h"
#include "dist/topology.h"
#include "util/bytes.h"

namespace moc {

/** Whether a module belongs to the replicated or the expert part. */
enum class ModuleKind { kNonExpert, kExpert };

inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/** One checkpointing unit of model state. */
struct ModuleState {
    /** Stable key, e.g. "layer/3/attn" or "moe/5/expert/7". */
    std::string key;
    ModuleKind kind = ModuleKind::kNonExpert;
    /** Transformer block index (kNoIndex for embedding / final norm). */
    std::size_t layer = kNoIndex;
    /** Index among MoE layers, in [0, NumMoeLayers()); kNoIndex otherwise. */
    std::size_t moe_index = kNoIndex;
    /** Expert id within the MoE layer; kNoIndex for non-expert modules. */
    ExpertId expert = kNoIndex;
    /** Parameter count of this unit. */
    std::size_t params = 0;
};

/**
 * The complete list of checkpointing units for one model, with byte
 * accounting under a StateBytes policy.
 */
class ModelStateInventory {
  public:
    ModelStateInventory(const ModelSpec& spec, const StateBytes& bytes);

    const ModelSpec& spec() const { return spec_; }
    const StateBytes& bytes() const { return bytes_; }
    const std::vector<ModuleState>& modules() const { return modules_; }

    /** All non-expert units, in model order. */
    std::vector<const ModuleState*> NonExpertModules() const;

    /** All expert units, in (moe_index, expert) order. */
    std::vector<const ModuleState*> ExpertModules() const;

    /** The expert unit for (moe layer @p moe_index, @p expert). */
    const ModuleState& ExpertModule(std::size_t moe_index, ExpertId expert) const;

    std::size_t NonExpertParams() const { return nonexpert_params_; }
    std::size_t ExpertParams() const { return expert_params_; }
    std::size_t TotalParams() const { return nonexpert_params_ + expert_params_; }

    /** Weight bytes of one unit. */
    Bytes WeightBytes(const ModuleState& m) const;

    /** Optimizer-state bytes of one unit. */
    Bytes OptimBytes(const ModuleState& m) const;

    /** Weight + optimizer bytes of one unit. */
    Bytes StateBytesOf(const ModuleState& m) const;

    /** Full checkpoint size (all units, weights + optimizer). */
    Bytes TotalStateBytes() const;

  private:
    ModelSpec spec_;
    struct StateBytes bytes_;
    std::vector<ModuleState> modules_;
    std::size_t nonexpert_params_ = 0;
    std::size_t expert_params_ = 0;
    /** expert_index_[moe_index][expert] -> position in modules_. */
    std::vector<std::vector<std::size_t>> expert_index_;
};

}  // namespace moc

#endif  // MOC_DIST_INVENTORY_H_
