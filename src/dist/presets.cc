#include "dist/presets.h"

#include "util/logging.h"

namespace moc {

ModelSpec
Gpt125M8E() {
    ModelSpec spec;
    spec.name = "GPT-125M-8E";
    spec.num_layers = 12;
    spec.hidden = 768;
    spec.num_heads = 12;
    spec.head_dim = 64;
    spec.ffn_mult = 4;
    spec.vocab = 50257;
    spec.max_seq = 2048;
    spec.num_experts = 8;
    spec.moe_every = 2;
    spec.moe_offset = 1;
    spec.top_k = 1;
    return spec;
}

ModelSpec
Gpt350M16E() {
    ModelSpec spec;
    spec.name = "GPT-350M-16E";
    spec.num_layers = 24;
    spec.hidden = 1024;
    spec.num_heads = 16;
    spec.head_dim = 64;
    spec.ffn_mult = 4;
    spec.vocab = 50257;
    spec.max_seq = 2048;
    spec.num_experts = 16;
    spec.moe_every = 2;
    spec.moe_offset = 1;
    spec.top_k = 1;
    return spec;
}

ModelSpec
SwinV2Moe() {
    ModelSpec spec;
    spec.name = "SwinV2-MoE";
    // Flat equivalent: 24 blocks at the dominant stage-3 width (96 * 2^2).
    spec.num_layers = 24;
    spec.hidden = 384;
    spec.num_heads = 12;
    spec.head_dim = 32;
    spec.ffn_mult = 4;
    spec.vocab = 1000;   // classifier head
    spec.max_seq = 256;  // patch tokens
    spec.num_experts = 8;
    spec.moe_every = 2;
    spec.moe_offset = 3;
    spec.top_k = 1;
    return spec;
}

ModelSpec
LlamaMoeSim(const std::string& size, std::size_t num_experts) {
    ModelSpec spec;
    spec.name = "LLaMA-MoE-" + size;
    if (size == "small") {
        spec.hidden = 1024;
    } else if (size == "medium") {
        spec.hidden = 2048;
    } else if (size == "large") {
        spec.hidden = 3072;
    } else {
        MOC_FATAL("unknown LLaMA-MoE size: " << size);
    }
    spec.num_layers = 24;
    spec.num_heads = 16;
    spec.head_dim = 128;
    spec.ffn_mult = 4;
    spec.vocab = 32000;
    spec.max_seq = 4096;
    spec.num_experts = num_experts;
    spec.moe_every = 2;
    spec.moe_offset = 1;
    spec.top_k = 1;
    return spec;
}

ClusterCase
Case1() {
    ClusterCase c;
    c.name = "Case1";
    c.nodes = 1;
    c.gpus = 8;
    c.parallel = {.dp = 8, .ep = 8, .tp = 1, .pp = 1};
    return c;
}

ClusterCase
Case2() {
    ClusterCase c;
    c.name = "Case2";
    c.nodes = 2;
    c.gpus = 16;
    c.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 1};
    return c;
}

ClusterCase
Case3() {
    ClusterCase c;
    c.name = "Case3";
    c.nodes = 2;
    c.gpus = 16;
    c.parallel = {.dp = 16, .ep = 8, .tp = 1, .pp = 1};
    return c;
}

std::vector<ClusterCase>
AllCases() {
    return {Case1(), Case2(), Case3()};
}

}  // namespace moc
