#ifndef MOC_DIST_PRESETS_H_
#define MOC_DIST_PRESETS_H_

/**
 * @file
 * Model presets (Table 1) and cluster configurations (Table 2) from the
 * paper, plus the LLaMA-like simulation models of Section 6.2.4.
 */

#include <string>
#include <vector>

#include "dist/model_spec.h"
#include "dist/topology.h"

namespace moc {

/** GPT-125M-8E: 12 layers, hidden 768, 6 MoE layers of 8 experts (~323M). */
ModelSpec Gpt125M8E();

/** GPT-350M-16E: 24 layers, hidden 1024, 12 MoE layers of 16 experts (~1.7B). */
ModelSpec Gpt350M16E();

/**
 * SwinV2-MoE flat-equivalent. The real model is staged ([2,2,18,2] blocks,
 * widths doubling per stage); we represent an equivalent flat transformer
 * whose non-expert/expert parameter split matches (~173M total, 10 MoE
 * layers of 8 experts). Used only for byte accounting.
 */
ModelSpec SwinV2Moe();

/**
 * LLaMA-like simulation model (Section 6.2.4): hidden per @p size
 * ("small"=1024, "medium"=2048, "large"=3072), 16 heads of dim 128,
 * intermediate 4x hidden, 24 layers, @p num_experts experts in every other
 * layer.
 */
ModelSpec LlamaMoeSim(const std::string& size, std::size_t num_experts);

/** A named training deployment (one row of Table 2). */
struct ClusterCase {
    std::string name;
    std::size_t nodes = 1;
    std::size_t gpus = 8;
    ParallelConfig parallel;

    std::size_t GpusPerNode() const { return gpus / nodes; }
    RankTopology Topology() const { return RankTopology(parallel, GpusPerNode()); }
};

/** Case1: 1 node / 8 GPUs, DP=8, EP=8 (2 experts per GPU for 16E). */
ClusterCase Case1();

/** Case2: 2 nodes / 16 GPUs, DP=16, EP=16 (1 expert per GPU for 16E). */
ClusterCase Case2();

/** Case3: 2 nodes / 16 GPUs, DP=16, EP=8 (2 EP groups). */
ClusterCase Case3();

/** All three cases, in order. */
std::vector<ClusterCase> AllCases();

}  // namespace moc

#endif  // MOC_DIST_PRESETS_H_
