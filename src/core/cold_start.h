#ifndef MOC_CORE_COLD_START_H_
#define MOC_CORE_COLD_START_H_

/**
 * @file
 * Cold-start restore: bring a fresh process's model back from a persistent
 * checkpoint store (the O_restart path of Eq. 3 — the job was killed and
 * rescheduled, so no in-memory snapshots survive anywhere).
 *
 * Under PEC the store holds each expert at the iteration it was last
 * persisted; the non-expert units and "extra" state define the restart
 * point. Cold start loads the freshest persisted version of every unit,
 * exactly like two-level recovery with an empty memory level.
 */

#include "core/moc_system.h"
#include "storage/object_store.h"

namespace moc {

/** What a cold start restored. */
struct ColdStartReport {
    /** Training state at the restart point. */
    ExtraState extra;
    /** Units restored (weight + optimizer blobs). */
    std::size_t keys_restored = 0;
    Bytes bytes_read = 0;
    /** Units absent from the store and left at their fresh-init values. */
    std::vector<std::string> missing;
    /** Units restored from an older verified version (manifest overload). */
    std::vector<DegradedKey> degraded;
    /** The checkpoint generation restored (manifest overload). */
    std::size_t generation = 0;
};

/**
 * Restores @p model (weights and Adam moments) from @p store.
 *
 * Every parameter group looks up "<key>/w" and "<key>/o"; groups absent
 * from the store are reported in `missing` and keep their constructor
 * values (legitimate for a store written before those modules existed).
 *
 * @throws std::runtime_error on corrupt blobs; std::invalid_argument if the
 *         store has no "extra/state" (not a MoC checkpoint store).
 */
ColdStartReport ColdStartFromStore(ParamSource& model, const ObjectStore& store);

/**
 * Manifest-aware cold start: restores from the newest eligible checkpoint
 * generation, CRC-verifying every blob against the manifest record and
 * walking each key's verified-version fallback chain (plain key, then the
 * `gen/<iter>/...` twin) when the preferred copy is damaged. Keys restored
 * below the planned iteration are listed in `degraded`; generations whose
 * non-expert or extra state cannot be verified are skipped entirely.
 *
 * @throws StoreError{kCorrupt} when no generation can be restored.
 */
ColdStartReport ColdStartFromStore(ParamSource& model, const ObjectStore& store,
                                   const CheckpointManifest& manifest);

/**
 * Copies every key of @p src into @p dst (checkpoint export/import, e.g.
 * simulated PersistentStore -> on-disk FileStore). Returns bytes copied.
 */
Bytes CopyStore(const ObjectStore& src, ObjectStore& dst);

}  // namespace moc

#endif  // MOC_CORE_COLD_START_H_
