#include "core/selection.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace moc {

SequentialSelector::SequentialSelector(std::size_t num_experts)
    : num_experts_(num_experts) {
    MOC_CHECK_ARG(num_experts >= 1, "need at least one expert");
}

std::vector<ExpertId>
SequentialSelector::Select(std::size_t ckpt_index, std::size_t moe_index,
                           std::size_t k) {
    MOC_CHECK_ARG(k >= 1 && k <= num_experts_, "k must be in [1, num_experts]");
    std::vector<ExpertId> out;
    out.reserve(k);
    const std::size_t base = (moe_index + ckpt_index) * k;
    for (std::size_t j = 0; j < k; ++j) {
        out.push_back((base + j) % num_experts_);
    }
    // With k not dividing N the window may wrap onto itself; dedupe while
    // preserving order, then fill from the next unused ids.
    std::vector<bool> used(num_experts_, false);
    std::vector<ExpertId> unique;
    unique.reserve(k);
    for (auto e : out) {
        if (!used[e]) {
            used[e] = true;
            unique.push_back(e);
        }
    }
    for (ExpertId e = 0; unique.size() < k; e = (e + 1) % num_experts_) {
        if (!used[e]) {
            used[e] = true;
            unique.push_back(e);
        }
    }
    return unique;
}

LoadAwareSelector::LoadAwareSelector(std::size_t num_experts, LoadFn load)
    : num_experts_(num_experts), load_(std::move(load)) {
    MOC_CHECK_ARG(num_experts >= 1, "need at least one expert");
    MOC_CHECK_ARG(static_cast<bool>(load_), "load function must be set");
}

std::vector<ExpertId>
LoadAwareSelector::Select(std::size_t ckpt_index, std::size_t moe_index,
                          std::size_t k) {
    (void)ckpt_index;
    MOC_CHECK_ARG(k >= 1 && k <= num_experts_, "k must be in [1, num_experts]");
    std::vector<ExpertId> order(num_experts_);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](ExpertId a, ExpertId b) {
        return load_(moe_index, a) > load_(moe_index, b);
    });
    order.resize(k);
    return order;
}

}  // namespace moc
