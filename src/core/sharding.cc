#include "core/sharding.h"

#include <algorithm>

#include "util/logging.h"

namespace moc {

ShardPlan::ShardPlan(std::size_t num_ranks) : per_rank_(num_ranks), loads_(num_ranks, 0) {
    MOC_CHECK_ARG(num_ranks >= 1, "plan needs at least one rank");
}

void
ShardPlan::Add(RankId rank, ShardItem item) {
    MOC_CHECK_ARG(rank < per_rank_.size(), "rank out of range");
    loads_[rank] += item.bytes;
    per_rank_[rank].push_back(std::move(item));
}

const std::vector<ShardItem>&
ShardPlan::Items(RankId rank) const {
    MOC_CHECK_ARG(rank < per_rank_.size(), "rank out of range");
    return per_rank_[rank];
}

Bytes
ShardPlan::RankBytes(RankId rank) const {
    MOC_CHECK_ARG(rank < loads_.size(), "rank out of range");
    return loads_[rank];
}

std::vector<Bytes>
ShardPlan::RankLoads() const {
    return loads_;
}

Bytes
ShardPlan::BottleneckBytes() const {
    return *std::max_element(loads_.begin(), loads_.end());
}

Bytes
ShardPlan::TotalBytes() const {
    Bytes total = 0;
    for (auto b : loads_) {
        total += b;
    }
    return total;
}

std::optional<RankId>
ShardPlan::FindWeightOwner(const std::string& key) const {
    for (RankId r = 0; r < per_rank_.size(); ++r) {
        for (const auto& item : per_rank_[r]) {
            if (!item.optimizer && item.key == key) {
                return r;
            }
        }
    }
    return std::nullopt;
}

ShardingPlanner::ShardingPlanner(const ModelStateInventory& inventory,
                                 const RankTopology& topology,
                                 const ShardingOptions& options)
    : inventory_(inventory), topology_(topology), options_(options) {
    MOC_CHECK_ARG(inventory.spec().num_experts % topology.ep() == 0,
                  "ep degree must divide the number of experts");
}

std::vector<std::vector<ExpertId>>
ShardingPlanner::FullSelection() const {
    const std::size_t layers = inventory_.spec().NumMoeLayers();
    const std::size_t n = inventory_.spec().num_experts;
    std::vector<std::vector<ExpertId>> sel(layers);
    for (auto& layer : sel) {
        layer.resize(n);
        for (std::size_t e = 0; e < n; ++e) {
            layer[e] = e;
        }
    }
    return sel;
}

ShardPlan
ShardingPlanner::PlanFull() const {
    const auto full = FullSelection();
    return Plan(full, full);
}

ShardPlan
ShardingPlanner::Plan(const std::vector<std::vector<ExpertId>>& experts_weights,
                      const std::vector<std::vector<ExpertId>>& experts_optim) const {
    const std::size_t layers = inventory_.spec().NumMoeLayers();
    MOC_CHECK_ARG(experts_weights.size() == layers && experts_optim.size() == layers,
                  "selection arity must equal the number of MoE layers");
    const std::size_t n = inventory_.spec().num_experts;
    const std::size_t dp = topology_.dp();
    const std::size_t groups = topology_.NumEpGroups();
    ShardPlan plan(dp);

    // Fragments an expert payload across the EP-group replicas.
    auto add_expert_fragments = [&](const ModuleState& module, Bytes bytes,
                                    std::size_t owner, bool optimizer,
                                    const char* tag) {
        const Bytes frag = bytes / groups;
        for (std::size_t g = 0; g < groups; ++g) {
            const Bytes take = g + 1 == groups ? bytes - frag * (groups - 1) : frag;
            plan.Add(topology_.RankOf(g, owner),
                     {module.key + tag + "#g" + std::to_string(g), take, optimizer});
        }
    };

    // --- 1. Expert weights ---
    const bool expert_weights_fragmented =
        options_.zero == ZeroStage::kZero3 ||
        (options_.equal_expert && groups > 1);
    for (std::size_t m = 0; m < layers; ++m) {
        for (ExpertId e : experts_weights[m]) {
            const auto& module = inventory_.ExpertModule(m, e);
            const Bytes w = inventory_.WeightBytes(module);
            const std::size_t owner = topology_.OwnerEpRank(e, n);
            if (expert_weights_fragmented && groups > 1) {
                add_expert_fragments(module, w, owner, false, "");
            } else {
                // Baseline: only EP group 0 saves expert weights (Fig. 7a).
                plan.Add(topology_.RankOf(0, owner), {module.key, w, false});
            }
        }
    }

    // --- 2. Expert optimizer states ---
    for (std::size_t m = 0; m < layers; ++m) {
        for (ExpertId e : experts_optim[m]) {
            const auto& module = inventory_.ExpertModule(m, e);
            const Bytes o = inventory_.OptimBytes(module);
            const std::size_t owner = topology_.OwnerEpRank(e, n);
            if (options_.zero == ZeroStage::kNone) {
                // Replicated at runtime: place like the weights.
                if (expert_weights_fragmented && groups > 1) {
                    add_expert_fragments(module, o, owner, true, "/optim");
                } else {
                    plan.Add(topology_.RankOf(0, owner),
                             {module.key + "/optim", o, true});
                }
            } else {
                // ZeRO: already partitioned across the replicas.
                add_expert_fragments(module, o, owner, true, "/optim");
            }
        }
    }

    // --- 3. Non-expert optimizer states ---
    // Under ZeRO: split evenly across all DP ranks. Without ZeRO the
    // optimizer follows the weights (handled in stage 4).
    if (options_.zero != ZeroStage::kNone) {
        Bytes ne_optim = 0;
        for (const auto* module : inventory_.NonExpertModules()) {
            ne_optim += inventory_.OptimBytes(*module);
        }
        const Bytes frag = ne_optim / dp;
        for (RankId r = 0; r < dp; ++r) {
            const Bytes take = r + 1 == dp ? ne_optim - frag * (dp - 1) : frag;
            plan.Add(r, {"nonexpert/optim#r" + std::to_string(r), take, true});
        }
    }

    // --- 4. Non-expert weights (+ optimizer when not ZeRO-partitioned) ---
    auto ne_modules = inventory_.NonExpertModules();
    auto unit_bytes = [&](const ModuleState& m) {
        Bytes b = options_.zero == ZeroStage::kZero3 ? 0
                                                     : inventory_.WeightBytes(m);
        if (options_.zero == ZeroStage::kNone) {
            b += inventory_.OptimBytes(m);
        }
        return b;
    };

    if (options_.zero == ZeroStage::kZero3) {
        // FSDP: weights partitioned across all DP ranks too.
        Bytes ne_weights = 0;
        for (const auto* module : ne_modules) {
            ne_weights += inventory_.WeightBytes(*module);
        }
        const Bytes frag = ne_weights / dp;
        for (RankId r = 0; r < dp; ++r) {
            const Bytes take = r + 1 == dp ? ne_weights - frag * (dp - 1) : frag;
            plan.Add(r, {"nonexpert/weights#r" + std::to_string(r), take, false});
        }
        return plan;
    }

    if (!options_.equal_nonexpert && !options_.adaptive_nonexpert) {
        // Baseline: rank 0 saves everything (Fig. 7a).
        for (const auto* module : ne_modules) {
            plan.Add(0, {module->key, unit_bytes(*module), false});
        }
        return plan;
    }

    // Greedy allocation: largest units first onto the least-loaded rank.
    std::stable_sort(ne_modules.begin(), ne_modules.end(),
                     [&](const ModuleState* a, const ModuleState* b) {
                         return unit_bytes(*a) > unit_bytes(*b);
                     });
    // "EN" balances the non-expert units in isolation; "AN" balances against
    // the accumulated expert + optimizer load of each rank.
    std::vector<Bytes> loads(dp, 0);
    if (options_.adaptive_nonexpert) {
        loads = plan.RankLoads();
    }
    for (const auto* module : ne_modules) {
        const RankId target = static_cast<RankId>(
            std::min_element(loads.begin(), loads.end()) - loads.begin());
        const Bytes w = unit_bytes(*module);
        loads[target] += w;
        plan.Add(target, {module->key, w, false});
    }
    return plan;
}

}  // namespace moc
