#include "core/dynamic_k.h"

#include "util/logging.h"

namespace moc {

DynamicKController::DynamicKController(std::size_t initial_k, std::size_t num_experts,
                                       double plt_threshold)
    : plt_threshold_(plt_threshold) {
    MOC_CHECK_ARG(initial_k >= 1 && initial_k <= num_experts,
                  "initial_k must be in [1, num_experts]");
    MOC_CHECK_ARG(plt_threshold > 0.0, "plt_threshold must be > 0");
    for (std::size_t k = initial_k; k < num_experts; k *= 2) {
        levels_.push_back(k);
    }
    levels_.push_back(num_experts);
}

std::size_t
DynamicKController::OnFaultRecovery(double cumulative_plt) {
    // Each level owns an equal slice of the total budget; once the
    // cumulative PLT crosses the budget consumed through the current level,
    // escalate. At the top level (K = N) no further PLT accrues.
    const double per_level = plt_threshold_ / static_cast<double>(levels_.size());
    while (level_ + 1 < levels_.size() &&
           cumulative_plt >= per_level * static_cast<double>(level_ + 1)) {
        ++level_;
    }
    return levels_[level_];
}

}  // namespace moc
