#ifndef MOC_CORE_TWO_LEVEL_H_
#define MOC_CORE_TWO_LEVEL_H_

/**
 * @file
 * Two-level recovery planning (Section 5.1, "Recovery").
 *
 * After a fault, every checkpointing unit is restored from the freshest
 * still-reachable version: in-memory snapshots on surviving nodes first
 * (newer, cheap to read), persistent storage otherwise. Non-expert units
 * always exist at the restart iteration at both levels; expert units may
 * only exist at older iterations — that staleness is what the PLT ledger
 * charges.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/manifest.h"
#include "storage/memory_store.h"

namespace moc {

/** Where a unit gets restored from. */
enum class RecoverySource { kMemory, kPersist, kInitial };

/** The restore decision for one store key. */
struct RecoveryDecision {
    std::string key;
    RecoverySource source = RecoverySource::kInitial;
    /** Iteration of the restored state (0 = initial weights). */
    std::size_t iteration = 0;
    Bytes bytes = 0;
    /** Write-time CRC of the chosen persist version (0 otherwise). */
    std::uint32_t crc = 0;
};

/** A complete recovery plan for one fault. */
struct RecoveryPlan {
    /** The checkpoint iteration training resumes from. */
    std::size_t restart_iteration = 0;
    std::vector<RecoveryDecision> decisions;
    Bytes bytes_from_memory = 0;
    Bytes bytes_from_storage = 0;
    /**
     * expert_recovered_iteration[m][e] — the effective state age of expert e
     * of MoE layer m after recovery (the staler of its weight/optimizer
     * parts), feeding PltLedger::OnFaultRecovery.
     */
    std::vector<std::vector<std::size_t>> expert_recovered_iteration;
};

/**
 * Plans recovery from the manifest after node failures have been applied
 * (the caller must invalidate failed nodes' memory entries first).
 */
class TwoLevelRecoveryPlanner {
  public:
    /**
     * @param two_level when false, recovery reads persistent storage only
     *        (the non-"-2L" variants of Fig. 14/Table 3).
     */
    explicit TwoLevelRecoveryPlanner(bool two_level) : two_level_(two_level) {}

    /**
     * @param manifest the (failure-adjusted) checkpoint manifest.
     * @param nonexpert_keys store keys of non-expert units ("<module>/w|o").
     * @param num_moe_layers / @p num_experts expert-grid dimensions; expert
     *        store keys are "moe/<m>/expert/<e>/w" and ".../o".
     * @param restart_override restart from this checkpoint generation
     *        instead of the newest complete one — recovery uses it to fall
     *        back to an older verified generation when the newest turns out
     *        to be damaged on read (docs/FAULT_MODEL.md).
     * @param survivors when non-null, only memory replicas held by these
     *        nodes count — the world-size-independent form of recovery: a
     *        plan for M survivors of an N-node world, without mutating the
     *        manifest the way DropNodeMemory does. Persist-level fallback
     *        chains are unaffected (storage outlives nodes).
     */
    RecoveryPlan Plan(const CheckpointManifest& manifest,
                      const std::vector<std::string>& nonexpert_keys,
                      std::size_t num_moe_layers, std::size_t num_experts,
                      std::optional<std::size_t> restart_override =
                          std::nullopt,
                      const std::vector<NodeId>* survivors = nullptr) const;

    bool two_level() const { return two_level_; }

  private:
    /**
     * @param cap_to_restart accept a memory snapshot only when it captures
     *        the restart iteration exactly (non-expert units: a fresher
     *        memory copy would desynchronize them from an older restart
     *        generation). Expert units take any surviving memory replica at
     *        or below the restart point — within that bound it is always at
     *        least as fresh as persistent storage.
     */
    RecoveryDecision DecideKey(const CheckpointManifest& manifest,
                               const std::string& key, std::size_t restart,
                               bool cap_to_restart,
                               const std::vector<NodeId>* survivors) const;

    bool two_level_;
};

}  // namespace moc

#endif  // MOC_CORE_TWO_LEVEL_H_
