#ifndef MOC_CORE_SELECTION_H_
#define MOC_CORE_SELECTION_H_

/**
 * @file
 * Partial-experts selection policies (Section 3.2).
 *
 * Sequential selection rotates the saved subset across checkpoints with an
 * interleaved offset per MoE layer, balancing the per-rank checkpoint
 * workload without any runtime coordination. Load-aware selection instead
 * saves the experts with the most unsaved updates, at the cost of needing
 * routing statistics.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/topology.h"

namespace moc {

/** Which partial-experts selection function to use. */
enum class SelectionPolicy { kSequential, kLoadAware };

/**
 * Strategy interface: which experts of one MoE layer to save at one
 * checkpoint event.
 */
class ExpertSelector {
  public:
    virtual ~ExpertSelector() = default;

    /**
     * @param ckpt_index running checkpoint-event counter (0, 1, 2, ...).
     * @param moe_index index of the MoE layer within the model.
     * @param k number of experts to select (1 <= k <= num_experts).
     * @return k distinct expert ids, in save order.
     */
    virtual std::vector<ExpertId> Select(std::size_t ckpt_index, std::size_t moe_index,
                                         std::size_t k) = 0;

    virtual std::string name() const = 0;
};

/**
 * The paper's sequential selection (Fig. 4): layer m at checkpoint c saves
 * experts {(m*k + c*k + j) mod N : j in [0, k)}. Consecutive MoE layers
 * start at staggered offsets, so the per-EP-rank workload interleaves, and
 * consecutive checkpoints advance the window so every expert is saved every
 * ceil(N/k) checkpoints.
 */
class SequentialSelector final : public ExpertSelector {
  public:
    explicit SequentialSelector(std::size_t num_experts);

    std::vector<ExpertId> Select(std::size_t ckpt_index, std::size_t moe_index,
                                 std::size_t k) override;
    std::string name() const override { return "sequential"; }

    std::size_t num_experts() const { return num_experts_; }

  private:
    std::size_t num_experts_;
};

/**
 * Load-aware selection: saves the k experts with the highest number of
 * unsaved routed tokens, queried through a caller-provided function
 * (typically backed by the PltLedger). Deterministic tie-break by expert id.
 */
class LoadAwareSelector final : public ExpertSelector {
  public:
    /** Returns the unsaved-update count of (moe layer, expert). */
    using LoadFn = std::function<std::uint64_t(std::size_t moe_index, ExpertId expert)>;

    LoadAwareSelector(std::size_t num_experts, LoadFn load);

    std::vector<ExpertId> Select(std::size_t ckpt_index, std::size_t moe_index,
                                 std::size_t k) override;
    std::string name() const override { return "load-aware"; }

  private:
    std::size_t num_experts_;
    LoadFn load_;
};

}  // namespace moc

#endif  // MOC_CORE_SELECTION_H_
