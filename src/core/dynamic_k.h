#ifndef MOC_CORE_DYNAMIC_K_H_
#define MOC_CORE_DYNAMIC_K_H_

/**
 * @file
 * The Dynamic-K strategy (Section 5.3): as faults accumulate, K_pec is
 * doubled whenever the cumulative PLT attributable to the current K level
 * exhausts that level's share of the 3.75% budget, up to checkpointing all
 * experts. This keeps total PLT bounded where a constant K grows linearly
 * with the fault count (Fig. 15b).
 */

#include <cstddef>
#include <vector>

namespace moc {

/** The paper's empirically safe PLT threshold. */
inline constexpr double kDefaultPltThreshold = 0.0375;

/**
 * Controller that escalates K_pec in response to accumulated PLT.
 */
class DynamicKController {
  public:
    /**
     * @param initial_k starting K_pec (>= 1).
     * @param num_experts N; the escalation ceiling.
     * @param plt_threshold total PLT budget for the whole training run.
     */
    DynamicKController(std::size_t initial_k, std::size_t num_experts,
                       double plt_threshold = kDefaultPltThreshold);

    /**
     * Recalibrates after a fault recovery.
     * @param cumulative_plt the ledger's PLT so far.
     * @return the K_pec to use from now on.
     */
    std::size_t OnFaultRecovery(double cumulative_plt);

    std::size_t current_k() const { return levels_[level_]; }
    double plt_threshold() const { return plt_threshold_; }

    /** The K escalation ladder (initial_k, 2*initial_k, ..., N). */
    const std::vector<std::size_t>& levels() const { return levels_; }

  private:
    std::vector<std::size_t> levels_;
    std::size_t level_ = 0;
    double plt_threshold_;
};

}  // namespace moc

#endif  // MOC_CORE_DYNAMIC_K_H_
