#ifndef MOC_CORE_ADAPTIVE_H_
#define MOC_CORE_ADAPTIVE_H_

/**
 * @file
 * Adaptive configuration for two-level PEC (Section 5.3): choose the
 * largest K_snapshot whose snapshot fully overlaps the next iteration's
 * forward/backward window (minimizing O_save at the lowest PLT), keep
 * K_persist small, and derive the minimum checkpoint interval from the
 * persist duration.
 */

#include <cstddef>

#include "util/bytes.h"
#include "util/clock.h"

namespace moc {

/** The measured/simulated quantities the configurator needs. */
struct AdaptiveInputs {
    /** Forward+backward window available for snapshot overlap. */
    Seconds t_fb = 1.0;
    /** Full iteration duration (F&B + update). */
    Seconds t_iter = 1.2;
    /** GPU->CPU snapshot bandwidth per rank, bytes/s. */
    double snapshot_bandwidth = 1.0 * kGiB;
    /** CPU->storage persist bandwidth per rank, bytes/s. */
    double persist_bandwidth = 0.5 * kGiB;
    /** Per-rank non-expert payload per checkpoint event. */
    Bytes nonexpert_bytes_per_rank = 0;
    /** Bytes of one expert's saved state on its owning rank. */
    Bytes expert_unit_bytes = 0;
    /** Number of MoE layers. */
    std::size_t num_moe_layers = 1;
    /** Experts per MoE layer (N). */
    std::size_t num_experts = 8;
    /** Expert-parallel degree. */
    std::size_t ep = 8;
};

/** The configurator's output. */
struct AdaptiveDecision {
    std::size_t k_snapshot = 1;
    std::size_t k_persist = 1;
    /** Minimum checkpoint interval (iterations) so persist never backlogs. */
    std::size_t i_ckpt_min = 1;
    Seconds t_snapshot = 0.0;
    Seconds t_persist = 0.0;
    /** True if even K_snapshot = 1 cannot fully overlap. */
    bool snapshot_overflows = false;
};

/** Per-rank snapshot duration for a given K (bottleneck rank). */
Seconds SnapshotTime(const AdaptiveInputs& in, std::size_t k);

/** Per-rank persist duration for a given K (bottleneck rank). */
Seconds PersistTime(const AdaptiveInputs& in, std::size_t k);

/**
 * Picks (K_snapshot, K_persist, I_ckpt_min) per Section 5.3.
 * @param k_persist requested persist K (clamped to k_snapshot).
 */
AdaptiveDecision ConfigureTwoLevelPec(const AdaptiveInputs& in,
                                      std::size_t k_persist = 1);

}  // namespace moc

#endif  // MOC_CORE_ADAPTIVE_H_
