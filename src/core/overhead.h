#ifndef MOC_CORE_OVERHEAD_H_
#define MOC_CORE_OVERHEAD_H_

/**
 * @file
 * The analytical fault-tolerance overhead model: Eq. 3/4 (total checkpoint
 * overhead) and Eq. 10–16 (snapshot stall, fault counts under a constant
 * failure rate, and the MoC-vs-Full comparison).
 */

#include "util/clock.h"

namespace moc {

/** The run-level constants of Eq. 4 and 11–13. */
struct FaultToleranceModel {
    /** Total training iterations (I_total). */
    double i_total = 100000.0;
    /** Failure rate: expected faults per iteration (lambda). */
    double lambda = 1e-4;
    /** Duration of one training iteration. */
    Seconds t_iter = 1.0;
    /** Restart cost per fault (O_restart). */
    Seconds o_restart = 300.0;
};

/** Expected fault count over the run (Eq. 11). */
double ExpectedFaults(const FaultToleranceModel& model);

/**
 * Snapshot overhead per checkpoint (Eq. 10): the stall beyond the next
 * iteration's forward/backward window.
 */
Seconds SnapshotStall(Seconds t_snapshot, Seconds t_fb);

/**
 * Total checkpoint overhead (Eq. 12/13), in seconds:
 * O_save * I_total / I_ckpt + lambda * I_total * (O_restart + I_ckpt/2 * t_iter).
 * @param o_save per-checkpoint overhead in seconds.
 * @param i_ckpt checkpoint interval in iterations (> 0).
 */
Seconds TotalCheckpointOverhead(const FaultToleranceModel& model, Seconds o_save,
                                double i_ckpt);

/**
 * The interval minimizing TotalCheckpointOverhead:
 * I* = sqrt(2 * O_save / (lambda * t_iter)).
 */
double OptimalInterval(const FaultToleranceModel& model, Seconds o_save);

/** Eq. 16: does MoC beat the full method at the given operating points? */
bool MocBeatsFull(const FaultToleranceModel& model, Seconds o_save_moc,
                  double i_ckpt_moc, Seconds o_save_full, double i_ckpt_full);

}  // namespace moc

#endif  // MOC_CORE_OVERHEAD_H_
