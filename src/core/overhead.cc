#include "core/overhead.h"

#include <cmath>

#include "util/logging.h"

namespace moc {

double
ExpectedFaults(const FaultToleranceModel& model) {
    return model.lambda * model.i_total;
}

Seconds
SnapshotStall(Seconds t_snapshot, Seconds t_fb) {
    return t_snapshot > t_fb ? t_snapshot - t_fb : 0.0;
}

Seconds
TotalCheckpointOverhead(const FaultToleranceModel& model, Seconds o_save,
                        double i_ckpt) {
    MOC_CHECK_ARG(i_ckpt > 0.0, "checkpoint interval must be > 0");
    const double saves = model.i_total / i_ckpt;
    const double faults = ExpectedFaults(model);
    const Seconds lost_per_fault = 0.5 * i_ckpt * model.t_iter;
    return o_save * saves + faults * (model.o_restart + lost_per_fault);
}

double
OptimalInterval(const FaultToleranceModel& model, Seconds o_save) {
    MOC_CHECK_ARG(model.lambda > 0.0 && model.t_iter > 0.0,
                  "lambda and t_iter must be > 0");
    if (o_save <= 0.0) {
        return 1.0;  // checkpoint every iteration: saving is free
    }
    return std::sqrt(2.0 * o_save / (model.lambda * model.t_iter));
}

bool
MocBeatsFull(const FaultToleranceModel& model, Seconds o_save_moc, double i_ckpt_moc,
             Seconds o_save_full, double i_ckpt_full) {
    return TotalCheckpointOverhead(model, o_save_moc, i_ckpt_moc) <
           TotalCheckpointOverhead(model, o_save_full, i_ckpt_full);
}

}  // namespace moc
