#include "core/pec.h"

#include "util/logging.h"

namespace moc {

PecPlanner::PecPlanner(std::size_t num_moe_layers, std::size_t num_experts,
                       const PecConfig& config,
                       std::unique_ptr<ExpertSelector> selector)
    : num_moe_layers_(num_moe_layers),
      num_experts_(num_experts),
      config_(config),
      selector_(std::move(selector)) {
    MOC_CHECK_ARG(num_moe_layers >= 1, "need at least one MoE layer");
    MOC_CHECK_ARG(num_experts >= 1, "need at least one expert");
    MOC_CHECK_ARG(selector_ != nullptr, "selector must be set");
    SetK(config.k_snapshot, config.k_persist);
}

void
PecPlanner::SetK(std::size_t k_snapshot, std::size_t k_persist) {
    MOC_CHECK_ARG(k_snapshot >= 1 && k_snapshot <= num_experts_,
                  "k_snapshot must be in [1, num_experts]");
    MOC_CHECK_ARG(k_persist >= 1 && k_persist <= k_snapshot,
                  "k_persist must be in [1, k_snapshot]");
    config_.k_snapshot = k_snapshot;
    config_.k_persist = k_persist;
}

PecSelection
PecPlanner::Plan(std::size_t ckpt_index) const {
    PecSelection sel;
    sel.snapshot.resize(num_moe_layers_);
    sel.persist.resize(num_moe_layers_);
    // persist-PEC selects from the snapshotted experts (Section 5.1). The
    // position inside the snapshot window must itself rotate: the window
    // advances by k_snapshot per event and tiles all N experts every
    // ceil(N / k_snapshot) events, so advancing the in-window offset by
    // k_persist once per tiling makes every expert persist within
    // ~N / k_persist events (the optimal persist rotation).
    const std::size_t ks = config_.k_snapshot;
    const std::size_t kp = config_.k_persist;
    const std::size_t events_per_tiling = (num_experts_ + ks - 1) / ks;
    const std::size_t offset = (ckpt_index / events_per_tiling * kp) % ks;
    for (std::size_t m = 0; m < num_moe_layers_; ++m) {
        sel.snapshot[m] = selector_->Select(ckpt_index, m, ks);
        sel.persist[m].reserve(kp);
        for (std::size_t j = 0; j < kp; ++j) {
            sel.persist[m].push_back(sel.snapshot[m][(offset + j) % ks]);
        }
    }
    return sel;
}

}  // namespace moc
