#ifndef MOC_CORE_PEC_H_
#define MOC_CORE_PEC_H_

/**
 * @file
 * Partial Experts Checkpointing (Section 3 + Section 5.1).
 *
 * The PEC planner turns a checkpoint-event counter into, per MoE layer, the
 * set of experts to snapshot (K_snapshot of N) and the subset to persist
 * (K_persist of the snapshotted ones). Full checkpointing is the special
 * case K_snapshot = K_persist = N.
 */

#include <memory>
#include <vector>

#include "core/selection.h"

namespace moc {

/** PEC hyperparameters. */
struct PecConfig {
    /** Experts per layer transferred GPU -> CPU at each checkpoint. */
    std::size_t k_snapshot = 1;
    /** Experts per layer persisted CPU -> storage (<= k_snapshot). */
    std::size_t k_persist = 1;
    /** Apply PEC to the expert weights ("W" in the paper). */
    bool pec_on_weights = true;
    /** Apply PEC to the expert optimizer states ("O" in the paper). */
    bool pec_on_optimizer = true;
    SelectionPolicy policy = SelectionPolicy::kSequential;
};

/** The experts chosen for one checkpoint event. */
struct PecSelection {
    /** snapshot[m] = experts of MoE layer m to snapshot. */
    std::vector<std::vector<ExpertId>> snapshot;
    /** persist[m] = experts of MoE layer m to persist (subset of snapshot[m]). */
    std::vector<std::vector<ExpertId>> persist;
};

/**
 * Plans PEC selections for successive checkpoint events.
 */
class PecPlanner {
  public:
    /**
     * @param num_moe_layers MoE layers in the model.
     * @param num_experts experts per MoE layer.
     * @param config PEC configuration (k values validated against N).
     * @param selector selection policy implementation (owned).
     */
    PecPlanner(std::size_t num_moe_layers, std::size_t num_experts,
               const PecConfig& config, std::unique_ptr<ExpertSelector> selector);

    /** Selection for checkpoint event @p ckpt_index. */
    PecSelection Plan(std::size_t ckpt_index) const;

    /** Updates k_snapshot / k_persist (Dynamic-K). */
    void SetK(std::size_t k_snapshot, std::size_t k_persist);

    const PecConfig& config() const { return config_; }
    std::size_t num_moe_layers() const { return num_moe_layers_; }
    std::size_t num_experts() const { return num_experts_; }

  private:
    std::size_t num_moe_layers_;
    std::size_t num_experts_;
    PecConfig config_;
    std::unique_ptr<ExpertSelector> selector_;
};

}  // namespace moc

#endif  // MOC_CORE_PEC_H_
