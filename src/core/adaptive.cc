#include "core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace moc {

namespace {

/**
 * Expert units the bottleneck rank must move when k experts per MoE layer
 * are saved: the k*num_moe_layers selected units spread over ep ranks, so
 * the heaviest rank carries ceil(k * M / ep) of them.
 */
std::size_t
BottleneckExpertUnits(const AdaptiveInputs& in, std::size_t k) {
    const std::size_t selected = k * in.num_moe_layers;
    return static_cast<std::size_t>(CeilDiv(selected, in.ep));
}

}  // namespace

Seconds
SnapshotTime(const AdaptiveInputs& in, std::size_t k) {
    const Bytes expert_bytes =
        static_cast<Bytes>(BottleneckExpertUnits(in, k)) * in.expert_unit_bytes;
    return static_cast<double>(in.nonexpert_bytes_per_rank + expert_bytes) /
           in.snapshot_bandwidth;
}

Seconds
PersistTime(const AdaptiveInputs& in, std::size_t k) {
    const Bytes expert_bytes =
        static_cast<Bytes>(BottleneckExpertUnits(in, k)) * in.expert_unit_bytes;
    return static_cast<double>(in.nonexpert_bytes_per_rank + expert_bytes) /
           in.persist_bandwidth;
}

AdaptiveDecision
ConfigureTwoLevelPec(const AdaptiveInputs& in, std::size_t k_persist) {
    MOC_CHECK_ARG(in.num_experts >= 1, "need at least one expert");
    MOC_CHECK_ARG(in.snapshot_bandwidth > 0.0 && in.persist_bandwidth > 0.0,
                  "bandwidths must be > 0");
    AdaptiveDecision out;
    // Largest K whose snapshot still hides inside the F&B window.
    std::size_t best = 0;
    for (std::size_t k = 1; k <= in.num_experts; ++k) {
        if (SnapshotTime(in, k) <= in.t_fb) {
            best = k;
        }
    }
    if (best == 0) {
        out.k_snapshot = 1;  // minimum viable; stall is unavoidable
        out.snapshot_overflows = true;
    } else {
        out.k_snapshot = best;
    }
    out.k_persist = std::clamp<std::size_t>(k_persist, 1, out.k_snapshot);
    out.t_snapshot = SnapshotTime(in, out.k_snapshot);
    out.t_persist = PersistTime(in, out.k_persist);
    out.i_ckpt_min = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(out.t_persist / in.t_iter)));
    return out;
}

}  // namespace moc
