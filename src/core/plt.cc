#include "core/plt.h"

#include "util/logging.h"

namespace moc {

PltLedger::PltLedger(std::size_t num_moe_layers, std::size_t num_experts)
    : num_experts_(num_experts),
      cum_(num_moe_layers, std::vector<std::uint64_t>(num_experts, 0)),
      assignments_(num_moe_layers, 0),
      lost_(num_moe_layers, std::vector<std::uint64_t>(num_experts, 0)) {
    MOC_CHECK_ARG(num_moe_layers >= 1, "need at least one MoE layer");
    MOC_CHECK_ARG(num_experts >= 1, "need at least one expert");
    // Iteration 0 = initial state: all counters zero.
    Snapshot zero;
    zero.cum = cum_;
    zero.assignments = assignments_;
    history_.emplace(0, std::move(zero));
}

void
PltLedger::RecordRouting(std::size_t moe_index,
                         const std::vector<std::size_t>& tokens_per_expert,
                         std::size_t assignments) {
    MOC_CHECK_ARG(moe_index < cum_.size(), "moe_index out of range");
    MOC_CHECK_ARG(tokens_per_expert.size() == num_experts_,
                  "per-expert count arity mismatch");
    for (std::size_t e = 0; e < num_experts_; ++e) {
        cum_[moe_index][e] += tokens_per_expert[e];
    }
    assignments_[moe_index] += assignments;
}

void
PltLedger::RecordCheckpointEvent(std::size_t iteration) {
    Snapshot snap;
    snap.cum = cum_;
    snap.assignments = assignments_;
    history_[iteration] = std::move(snap);
}

void
PltLedger::OnFaultRecovery(
    std::size_t restart_iteration,
    const std::vector<std::vector<std::size_t>>& expert_recovered_iteration) {
    auto restart_it = history_.find(restart_iteration);
    MOC_CHECK_ARG(restart_it != history_.end(),
                  "restart iteration " << restart_iteration
                                       << " has no recorded checkpoint");
    MOC_CHECK_ARG(expert_recovered_iteration.size() == cum_.size(),
                  "recovery table arity mismatch");
    const Snapshot& at_restart = restart_it->second;

    for (std::size_t m = 0; m < cum_.size(); ++m) {
        MOC_CHECK_ARG(expert_recovered_iteration[m].size() == num_experts_,
                      "recovery table expert arity mismatch");
        for (std::size_t e = 0; e < num_experts_; ++e) {
            const std::size_t recovered = expert_recovered_iteration[m][e];
            MOC_CHECK_ARG(recovered <= restart_iteration,
                          "expert cannot be fresher than the restart point");
            auto rec_it = history_.find(recovered);
            MOC_CHECK_ARG(rec_it != history_.end(),
                          "recovered iteration " << recovered
                                                 << " has no recorded checkpoint");
            const std::uint64_t lost =
                at_restart.cum[m][e] - rec_it->second.cum[m][e];
            lost_[m][e] += lost;
        }
    }

    // Roll back the live counters: iterations after the restart point will be
    // replayed and re-recorded.
    cum_ = at_restart.cum;
    assignments_ = at_restart.assignments;
    // Drop frozen snapshots newer than the restart point (they will be
    // rewritten during replay).
    history_.erase(history_.upper_bound(restart_iteration), history_.end());
}

std::uint64_t
PltLedger::CumulativeTokens(std::size_t moe_index, ExpertId expert) const {
    MOC_CHECK_ARG(moe_index < cum_.size() && expert < num_experts_,
                  "index out of range");
    return cum_[moe_index][expert];
}

std::uint64_t
PltLedger::CumulativeTokensAt(std::size_t iteration, std::size_t moe_index,
                              ExpertId expert) const {
    auto it = history_.find(iteration);
    MOC_CHECK_ARG(it != history_.end(), "no snapshot at iteration " << iteration);
    return it->second.cum.at(moe_index).at(expert);
}

std::uint64_t
PltLedger::LostTokens(std::size_t moe_index, ExpertId expert) const {
    MOC_CHECK_ARG(moe_index < lost_.size() && expert < num_experts_,
                  "index out of range");
    return lost_[moe_index][expert];
}

std::uint64_t
PltLedger::LayerLostTokens(std::size_t moe_index) const {
    MOC_CHECK_ARG(moe_index < lost_.size(), "moe_index out of range");
    std::uint64_t total = 0;
    for (auto v : lost_[moe_index]) {
        total += v;
    }
    return total;
}

std::uint64_t
PltLedger::LayerAssignments(std::size_t moe_index) const {
    MOC_CHECK_ARG(moe_index < assignments_.size(), "moe_index out of range");
    return assignments_[moe_index];
}

double
PltLedger::Plt() const {
    double sum = 0.0;
    for (std::size_t m = 0; m < cum_.size(); ++m) {
        if (assignments_[m] == 0) {
            continue;
        }
        sum += static_cast<double>(LayerLostTokens(m)) /
               static_cast<double>(assignments_[m]);
    }
    return sum / static_cast<double>(cum_.size());
}

}  // namespace moc
