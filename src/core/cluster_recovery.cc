#include "core/cluster_recovery.h"

#include <set>

#include "obs/trace.h"
#include "storage/delta_codec.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace moc {

namespace {

/** Ceiling on ref/delta indirections while reconstructing one version —
    far above any real chain (max_delta_chain defaults to 8); guards
    against a corrupted manifest sending the walk in circles. */
constexpr std::size_t kMaxChainDepth = 64;

/**
 * Reconstructs one manifest-recorded version's logical bytes and verifies
 * them against the record:
 *
 *  - a dedup ref recurses into the referenced iteration's version;
 *  - a delta version reads its record at DeltaShardKey (verified against
 *    the record's physical delta_bytes/delta_crc), recursively
 *    reconstructs the base iteration, and applies the delta;
 *  - a full version reads the versioned shard key (or the plain
 *    latest-wins key, for pre-protocol blobs).
 *
 * Every path ends with the logical (size, CRC-32C) check, so a chain whose
 * base is damaged — or whose manifest entry went missing — yields nullopt
 * and the caller falls back down the key's verified chain.
 */
std::optional<Blob>
ReconstructVerified(const CheckpointManifest& manifest, const ObjectStore& store,
                    const std::string& key, const PersistVersion& version,
                    std::size_t depth = 0) {
    if (depth >= kMaxChainDepth) {
        return std::nullopt;
    }
    const auto logical_ok = [&version](const Blob& blob) {
        return blob.size() == version.bytes &&
               Crc32c(blob.data(), blob.size()) == version.crc;
    };
    if (version.ref.has_value()) {
        const auto base = manifest.FindPersistVersion(key, *version.ref);
        if (base.has_value() && !base->ref.has_value()) {
            auto blob =
                ReconstructVerified(manifest, store, key, *base, depth + 1);
            if (blob.has_value() && logical_ok(*blob)) {
                return blob;
            }
        }
        // Fall through: older manifests recorded refs without keeping the
        // base entry reachable; try the physical blob directly.
    } else if (version.is_delta()) {
        try {
            const auto record =
                store.Get(DeltaShardKey(key, version.iteration));
            if (!record.has_value() || record->size() != version.delta_bytes ||
                Crc32c(record->data(), record->size()) != version.delta_crc) {
                return std::nullopt;
            }
            const auto base =
                manifest.FindPersistVersion(key, *version.delta_base);
            if (!base.has_value()) {
                return std::nullopt;
            }
            const auto base_blob =
                ReconstructVerified(manifest, store, key, *base, depth + 1);
            if (!base_blob.has_value()) {
                return std::nullopt;
            }
            Blob blob = ApplyDelta(*record, *base_blob);
            if (logical_ok(blob)) {
                return blob;
            }
        } catch (const std::exception&) {
            // Typed corruption from the backend, or a malformed record
            // (ParseDelta/ApplyDelta throw): the chain is broken here.
        }
        return std::nullopt;
    }
    const std::string sources[] = {
        VersionedShardKey(key, version.PhysicalIteration()), key};
    for (const auto& source : sources) {
        try {
            auto blob = store.Get(source);
            if (blob.has_value() && logical_ok(*blob)) {
                return blob;
            }
        } catch (const std::runtime_error&) {
            // Typed corruption from the backend; try the next candidate.
        }
    }
    return std::nullopt;
}

}  // namespace

std::optional<ClusterRestorePlan>
PlanClusterRestore(const CheckpointManifest& manifest,
                   std::optional<std::size_t> max_iteration,
                   const RankRemap* remap) {
    for (const std::size_t generation : manifest.EligibleGenerations()) {
        if (max_iteration.has_value() && generation > *max_iteration) {
            continue;
        }
        ClusterRestorePlan plan;
        plan.generation = generation;
        std::set<std::string> targets;
        for (const auto& key : manifest.KeysAt(StoreLevel::kPersist)) {
            const auto chain = manifest.PersistFallbackChain(key, generation);
            if (chain.empty()) {
                plan.missing.push_back(key);
                continue;
            }
            const std::string target =
                remap != nullptr ? remap->Apply(key) : key;
            if (!targets.insert(target).second) {
                // Two source keys landed on one survivor key; keep the
                // first (deterministic: KeysAt is sorted) and surface the
                // loser rather than silently dropping bytes.
                plan.missing.push_back(key);
                continue;
            }
            const PersistVersion& chosen = chain.front();
            plan.shards.push_back(ShardRestorePlan{
                key, target, chosen.iteration,
                chosen.is_delta()
                    ? DeltaShardKey(key, chosen.iteration)
                    : VersionedShardKey(key, chosen.PhysicalIteration()),
                chosen.crc, chosen.bytes});
            if (chosen.iteration != generation) {
                plan.degraded.push_back(
                    {key, generation, chosen.iteration,
                     "no usable version at the target generation"});
            }
        }
        return plan;
    }
    return std::nullopt;
}

ClusterRestoreResult
ExecuteClusterRestore(const CheckpointManifest& manifest,
                      const ObjectStore& store, const ClusterRestorePlan& plan) {
    // Restore spans carry the generation being restored, so a recovery
    // shows up as its own lane in the flight recorder.
    obs::TraceContext ctx;
    ctx.generation = plan.generation;
    ctx.iteration = plan.generation;
    ctx.phase = "restore";
    const obs::TraceContextScope ctx_scope(ctx);
    const obs::TraceSpan span("cluster.restore", "cluster");
    ClusterRestoreResult result;
    result.generation = plan.generation;
    for (const auto& shard : plan.shards) {
        std::optional<Blob> blob;
        std::size_t restored_iteration = shard.iteration;
        for (const auto& version :
             manifest.PersistFallbackChain(shard.key, plan.generation)) {
            blob = ReconstructVerified(manifest, store, shard.key, version);
            if (blob.has_value()) {
                restored_iteration = version.iteration;
                break;
            }
        }
        if (!blob.has_value()) {
            result.damaged.push_back(shard.key);
            MOC_WARN << "cluster restore: every candidate of " << shard.key
                     << " failed verification";
            continue;
        }
        if (restored_iteration != shard.iteration) {
            result.degraded.push_back(
                {shard.key, shard.iteration, restored_iteration,
                 "planned version damaged; restored older verified version"});
        }
        result.bytes_read += blob->size();
        result.blobs.emplace(
            shard.target_key.empty() ? shard.key : shard.target_key,
            std::move(*blob));
        ++result.shards_restored;
    }
    return result;
}

}  // namespace moc
