#include "core/cluster_recovery.h"

#include <set>

#include "obs/trace.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace moc {

namespace {

/**
 * Reads one manifest-recorded version, accepting whichever copy (the
 * versioned shard key of the physical iteration, or the plain latest-wins
 * key) CRC-matches the record.
 */
std::optional<Blob>
ReadShardVerified(const ObjectStore& store, const std::string& key,
                  const PersistVersion& version) {
    const std::string sources[] = {
        VersionedShardKey(key, version.PhysicalIteration()), key};
    for (const auto& source : sources) {
        try {
            auto blob = store.Get(source);
            if (blob.has_value() && blob->size() == version.bytes &&
                Crc32c(blob->data(), blob->size()) == version.crc) {
                return blob;
            }
        } catch (const std::runtime_error&) {
            // Typed corruption from the backend; try the next candidate.
        }
    }
    return std::nullopt;
}

}  // namespace

std::optional<ClusterRestorePlan>
PlanClusterRestore(const CheckpointManifest& manifest,
                   std::optional<std::size_t> max_iteration,
                   const RankRemap* remap) {
    for (const std::size_t generation : manifest.EligibleGenerations()) {
        if (max_iteration.has_value() && generation > *max_iteration) {
            continue;
        }
        ClusterRestorePlan plan;
        plan.generation = generation;
        std::set<std::string> targets;
        for (const auto& key : manifest.KeysAt(StoreLevel::kPersist)) {
            const auto chain = manifest.PersistFallbackChain(key, generation);
            if (chain.empty()) {
                plan.missing.push_back(key);
                continue;
            }
            const std::string target =
                remap != nullptr ? remap->Apply(key) : key;
            if (!targets.insert(target).second) {
                // Two source keys landed on one survivor key; keep the
                // first (deterministic: KeysAt is sorted) and surface the
                // loser rather than silently dropping bytes.
                plan.missing.push_back(key);
                continue;
            }
            const PersistVersion& chosen = chain.front();
            plan.shards.push_back(ShardRestorePlan{
                key, target, chosen.iteration,
                VersionedShardKey(key, chosen.PhysicalIteration()), chosen.crc,
                chosen.bytes});
            if (chosen.iteration != generation) {
                plan.degraded.push_back(
                    {key, generation, chosen.iteration,
                     "no usable version at the target generation"});
            }
        }
        return plan;
    }
    return std::nullopt;
}

ClusterRestoreResult
ExecuteClusterRestore(const CheckpointManifest& manifest,
                      const ObjectStore& store, const ClusterRestorePlan& plan) {
    // Restore spans carry the generation being restored, so a recovery
    // shows up as its own lane in the flight recorder.
    obs::TraceContext ctx;
    ctx.generation = plan.generation;
    ctx.iteration = plan.generation;
    ctx.phase = "restore";
    const obs::TraceContextScope ctx_scope(ctx);
    const obs::TraceSpan span("cluster.restore", "cluster");
    ClusterRestoreResult result;
    result.generation = plan.generation;
    for (const auto& shard : plan.shards) {
        std::optional<Blob> blob;
        std::size_t restored_iteration = shard.iteration;
        for (const auto& version :
             manifest.PersistFallbackChain(shard.key, plan.generation)) {
            blob = ReadShardVerified(store, shard.key, version);
            if (blob.has_value()) {
                restored_iteration = version.iteration;
                break;
            }
        }
        if (!blob.has_value()) {
            result.damaged.push_back(shard.key);
            MOC_WARN << "cluster restore: every candidate of " << shard.key
                     << " failed verification";
            continue;
        }
        if (restored_iteration != shard.iteration) {
            result.degraded.push_back(
                {shard.key, shard.iteration, restored_iteration,
                 "planned version damaged; restored older verified version"});
        }
        result.bytes_read += blob->size();
        result.blobs.emplace(
            shard.target_key.empty() ? shard.key : shard.target_key,
            std::move(*blob));
        ++result.shards_restored;
    }
    return result;
}

}  // namespace moc
