#include "core/placement.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace moc {

namespace {

/** Load one replica of @p expert adds to its host under load splitting. */
double
Contribution(const ExpertSpec& expert, std::size_t replica_count) {
    return replica_count == 0 ? expert.load
                              : expert.load / static_cast<double>(replica_count);
}

/** The live rank currently carrying the least load, excluding @p taken. */
std::size_t
ColdestRank(const std::map<std::size_t, double>& load,
            const std::unordered_set<std::size_t>& taken) {
    std::size_t best = 0;
    double best_load = 0.0;
    bool found = false;
    for (const auto& [rank, l] : load) {
        if (taken.count(rank) != 0) {
            continue;
        }
        if (!found || l < best_load) {
            best = rank;
            best_load = l;
            found = true;
        }
    }
    if (!found) {
        throw std::logic_error("placement: no rank left to place onto");
    }
    return best;
}

}  // namespace

const char*
PlacementPolicyName(PlacementPolicy policy) {
    switch (policy) {
        case PlacementPolicy::kLoadAware: return "load_aware";
        case PlacementPolicy::kMinMove: return "min_move";
        case PlacementPolicy::kRoundRobin: return "round_robin";
    }
    return "unknown";
}

const std::vector<std::size_t>*
PlacementPlan::Hosts(std::size_t expert) const {
    const auto it = assignments.find(expert);
    return it == assignments.end() ? nullptr : &it->second;
}

PlacementPlan
SolvePlacement(const PlacementProblem& problem) {
    if (problem.live_ranks.empty()) {
        throw std::invalid_argument("placement: empty live rank set");
    }
    std::vector<std::size_t> live = problem.live_ranks;
    std::sort(live.begin(), live.end());
    live.erase(std::unique(live.begin(), live.end()), live.end());
    const std::unordered_set<std::size_t> live_set(live.begin(), live.end());
    const std::size_t want =
        std::max<std::size_t>(1, std::min(problem.replicas, live.size()));

    PlacementPlan plan;
    for (std::size_t rank : live) {
        plan.rank_load[rank] = 0.0;
    }

    // Hot experts first: the greedy bound max <= mean + max_contribution
    // holds for longest-processing-time-first list scheduling, and hot
    // experts placed early land on genuinely cold ranks.
    std::vector<const ExpertSpec*> order;
    order.reserve(problem.experts.size());
    for (const ExpertSpec& e : problem.experts) {
        order.push_back(&e);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const ExpertSpec* a, const ExpertSpec* b) {
                         return a->load > b->load;
                     });

    const bool from_scratch = problem.policy == PlacementPolicy::kRoundRobin;
    std::size_t rr_cursor = 0;
    for (const ExpertSpec* expert : order) {
        std::vector<std::size_t>& hosts = plan.assignments[expert->id];
        std::unordered_set<std::size_t> taken;
        if (!from_scratch) {
            // Survivors stay put — that is the whole moved-bytes story.
            const auto prev_it = problem.current.find(expert->id);
            if (prev_it != problem.current.end()) {
                for (std::size_t rank : prev_it->second) {
                    if (live_set.count(rank) != 0 && taken.insert(rank).second &&
                        hosts.size() < want) {
                        hosts.push_back(rank);
                    }
                }
            }
        }
        const double contrib = Contribution(*expert, want);
        const bool known_before =
            problem.current.find(expert->id) != problem.current.end();
        while (hosts.size() < want) {
            std::size_t rank;
            if (from_scratch) {
                // Pure striping; skips ranks already hosting this expert.
                do {
                    rank = live[rr_cursor % live.size()];
                    ++rr_cursor;
                } while (taken.count(rank) != 0);
            } else {
                rank = ColdestRank(plan.rank_load, taken);
            }
            taken.insert(rank);
            hosts.push_back(rank);
            if (known_before) {
                plan.moved_bytes += expert->bytes;
                ++plan.moved_replicas;
            }
        }
        for (std::size_t rank : hosts) {
            plan.rank_load[rank] += contrib;
        }
    }

    if (problem.policy == PlacementPolicy::kLoadAware) {
        // Bounded local search: migrate a replica off the hottest rank onto
        // the coldest rank not hosting its expert, while that strictly
        // shrinks the spread. Each move costs the expert's bytes, so the cap
        // keeps moved_bytes from ballooning chasing the last percent.
        std::unordered_map<std::size_t, const ExpertSpec*> by_id;
        for (const ExpertSpec& e : problem.experts) {
            by_id[e.id] = &e;
        }
        // One move per placed replica is enough for the local search to
        // converge (each move strictly shrinks the load spread); a cap tied
        // to live.size() alone starves convergence after churn pins many
        // surviving replicas on the wrong ranks.
        std::size_t cap = problem.rebalance_cap != 0
                              ? problem.rebalance_cap
                              : std::max<std::size_t>(live.size(),
                                                      order.size() * want);
        while (cap-- > 0) {
            auto hot = std::max_element(
                plan.rank_load.begin(), plan.rank_load.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
            bool moved = false;
            for (auto& [expert_id, hosts] : plan.assignments) {
                const auto host_it =
                    std::find(hosts.begin(), hosts.end(), hot->first);
                if (host_it == hosts.end()) {
                    continue;
                }
                const ExpertSpec* expert = by_id.at(expert_id);
                const double contrib = Contribution(*expert, hosts.size());
                const std::unordered_set<std::size_t> taken(hosts.begin(),
                                                            hosts.end());
                std::size_t cold;
                try {
                    cold = ColdestRank(plan.rank_load, taken);
                } catch (const std::logic_error&) {
                    continue;  // expert already everywhere
                }
                // Strict improvement with slack: moving must shrink the
                // hot/cold gap by more than the moved contribution, or we'd
                // oscillate the same replica back and forth.
                if (hot->second - plan.rank_load[cold] <= contrib) {
                    continue;
                }
                hosts.erase(host_it);
                hosts.push_back(cold);
                hot->second -= contrib;
                plan.rank_load[cold] += contrib;
                plan.moved_bytes += expert->bytes;
                ++plan.moved_replicas;
                moved = true;
                break;
            }
            if (!moved) {
                break;
            }
        }
    }
    return plan;
}

PlacementCheck
VerifyPlacement(const PlacementProblem& problem, const PlacementPlan& plan) {
    PlacementCheck check;
    auto fail = [&check](const std::string& why) {
        if (check.ok) {
            check.ok = false;
            check.error = why;
        }
    };
    std::vector<std::size_t> live = problem.live_ranks;
    std::sort(live.begin(), live.end());
    live.erase(std::unique(live.begin(), live.end()), live.end());
    const std::unordered_set<std::size_t> live_set(live.begin(), live.end());
    const std::size_t want =
        std::max<std::size_t>(1, std::min(problem.replicas, live.size()));

    std::map<std::size_t, double> load;
    for (std::size_t rank : live) {
        load[rank] = 0.0;
    }
    for (const ExpertSpec& expert : problem.experts) {
        const auto it = plan.assignments.find(expert.id);
        if (it == plan.assignments.end()) {
            fail("expert " + std::to_string(expert.id) + " unplaced");
            continue;
        }
        const std::vector<std::size_t>& hosts = it->second;
        if (hosts.size() < want) {
            fail("expert " + std::to_string(expert.id) + " has " +
                 std::to_string(hosts.size()) + " replicas, wants " +
                 std::to_string(want));
        }
        const std::set<std::size_t> uniq(hosts.begin(), hosts.end());
        if (uniq.size() != hosts.size()) {
            fail("expert " + std::to_string(expert.id) +
                 " placed twice on one rank");
        }
        const double contrib = Contribution(expert, hosts.size());
        check.max_contribution = std::max(check.max_contribution, contrib);
        for (std::size_t rank : hosts) {
            if (live_set.count(rank) == 0) {
                fail("expert " + std::to_string(expert.id) + " on dead rank " +
                     std::to_string(rank));
                continue;
            }
            load[rank] += contrib;
        }
    }
    double total = 0.0;
    bool first = true;
    for (const auto& [rank, l] : load) {
        (void)rank;
        total += l;
        check.max_load = first ? l : std::max(check.max_load, l);
        check.min_load = first ? l : std::min(check.min_load, l);
        first = false;
    }
    check.mean_load = load.empty() ? 0.0 : total / static_cast<double>(load.size());
    if (problem.policy != PlacementPolicy::kRoundRobin &&
        check.max_load >
            check.mean_load + check.max_contribution + 1e-9) {
        std::ostringstream why;
        why << "load imbalance: max " << check.max_load << " > mean "
            << check.mean_load << " + max contribution "
            << check.max_contribution;
        fail(why.str());
    }
    return check;
}

std::string
RankRemap::Apply(const std::string& key) const {
    const auto exact = keys.find(key);
    if (exact != keys.end()) {
        return exact->second;
    }
    // "rank<r>/rest" → "rank<m>/rest" when r is remapped.
    if (key.compare(0, 4, "rank") != 0) {
        return key;
    }
    const std::size_t slash = key.find('/', 4);
    if (slash == std::string::npos || slash == 4) {
        return key;
    }
    std::size_t rank = 0;
    for (std::size_t i = 4; i < slash; ++i) {
        if (key[i] < '0' || key[i] > '9') {
            return key;
        }
        rank = rank * 10 + static_cast<std::size_t>(key[i] - '0');
    }
    const auto it = ranks.find(rank);
    if (it == ranks.end()) {
        return key;
    }
    return "rank" + std::to_string(it->second) + key.substr(slash);
}

RankRemap
BuildRankRemap(std::size_t old_world_size,
               const std::vector<std::size_t>& survivors) {
    if (survivors.empty()) {
        throw std::invalid_argument("rank remap: no survivors");
    }
    std::vector<std::size_t> live = survivors;
    std::sort(live.begin(), live.end());
    live.erase(std::unique(live.begin(), live.end()), live.end());
    const std::unordered_set<std::size_t> live_set(live.begin(), live.end());
    RankRemap remap;
    for (std::size_t rank = 0; rank < old_world_size; ++rank) {
        if (live_set.count(rank) == 0) {
            remap.ranks[rank] = live[rank % live.size()];
        }
    }
    return remap;
}

void
AddExpertMoves(
    RankRemap& remap,
    const std::map<std::size_t, std::vector<std::size_t>>& before,
    const std::map<std::size_t, std::vector<std::size_t>>& after,
    const std::function<std::string(std::size_t rank, std::size_t expert)>&
        key_of) {
    for (const auto& [expert, old_hosts] : before) {
        if (old_hosts.empty()) {
            continue;
        }
        const auto it = after.find(expert);
        if (it == after.end() || it->second.empty()) {
            continue;
        }
        const std::size_t old_primary = old_hosts.front();
        const std::size_t new_primary = it->second.front();
        if (old_primary != new_primary) {
            remap.keys[key_of(old_primary, expert)] =
                key_of(new_primary, expert);
        }
    }
}

}  // namespace moc
