#include "core/cold_start.h"

#include "storage/store_error.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace moc {

namespace {

/**
 * Reads one manifest-recorded version from @p store, accepting whichever
 * copy (plain latest-wins key or generation twin) CRC-matches the record.
 */
std::optional<Blob>
ReadVerified(const ObjectStore& store, const std::string& key,
             const PersistVersion& version) {
    const std::string sources[] = {
        key, MocCheckpointSystem::GenKey(version.iteration, key)};
    for (const auto& source : sources) {
        try {
            auto blob = store.Get(source);
            if (blob.has_value() &&
                Crc32c(blob->data(), blob->size()) == version.crc) {
                return blob;
            }
        } catch (const std::runtime_error&) {
            // Typed corruption from the backend; try the twin.
        }
    }
    return std::nullopt;
}

}  // namespace

ColdStartReport
ColdStartFromStore(ParamSource& model, const ObjectStore& store) {
    ColdStartReport report;
    const auto extra_blob = store.Get("extra/state");
    MOC_CHECK_ARG(extra_blob.has_value(),
                  "store has no extra/state: not a MoC checkpoint store");
    report.extra = DeserializeExtraState(*extra_blob);

    for (auto& group : model.ParameterGroups()) {
        for (const bool weights : {true, false}) {
            const std::string key = group.key + (weights ? "/w" : "/o");
            const auto blob = store.Get(key);
            if (!blob.has_value()) {
                report.missing.push_back(key);
                continue;
            }
            DeserializeParamList(*blob, group.params, weights);
            ++report.keys_restored;
            report.bytes_read += blob->size();
        }
    }
    return report;
}

ColdStartReport
ColdStartFromStore(ParamSource& model, const ObjectStore& store,
                   const CheckpointManifest& manifest) {
    for (const std::size_t generation : manifest.EligibleGenerations()) {
        ColdStartReport report;
        report.generation = generation;
        // "Extra" state defines the restart point; it must come from this
        // generation exactly or the generation is unusable.
        const auto extra_chain =
            manifest.PersistFallbackChain("extra/state", generation);
        if (extra_chain.empty() ||
            extra_chain.front().iteration != generation) {
            continue;
        }
        const auto extra_blob =
            ReadVerified(store, "extra/state", extra_chain.front());
        if (!extra_blob.has_value()) {
            continue;
        }
        report.extra = DeserializeExtraState(*extra_blob);

        bool generation_ok = true;
        for (auto& group : model.ParameterGroups()) {
            const bool is_expert = group.kind == ModuleKind::kExpert;
            for (const bool weights : {true, false}) {
                const std::string key = group.key + (weights ? "/w" : "/o");
                const auto chain =
                    manifest.PersistFallbackChain(key, generation);
                if (chain.empty()) {
                    report.missing.push_back(key);
                    continue;
                }
                std::optional<Blob> blob;
                std::size_t got = chain.front().iteration;
                for (const auto& version : chain) {
                    blob = ReadVerified(store, key, version);
                    if (blob.has_value()) {
                        got = version.iteration;
                        break;
                    }
                }
                if (!blob.has_value() ||
                    (!is_expert && got != extra_chain.front().iteration)) {
                    generation_ok = false;
                    break;
                }
                if (got != chain.front().iteration) {
                    report.degraded.push_back(
                        {key, chain.front().iteration, got,
                         "corrupt shard; restored older verified version"});
                }
                DeserializeParamList(*blob, group.params, weights);
                ++report.keys_restored;
                report.bytes_read += blob->size();
            }
            if (!generation_ok) {
                break;
            }
        }
        if (generation_ok) {
            return report;
        }
        MOC_WARN << "cold start: generation " << generation
                 << " unusable; trying an older one";
    }
    throw StoreError(StoreErrorKind::kCorrupt, "meta/manifest",
                     "no checkpoint generation in this store can be "
                     "restored with verification");
}

Bytes
CopyStore(const ObjectStore& src, ObjectStore& dst) {
    Bytes copied = 0;
    for (const auto& key : src.Keys()) {
        auto blob = src.Get(key);
        MOC_ASSERT(blob.has_value(), "key vanished during copy: " << key);
        copied += blob->size();
        dst.Put(key, std::move(*blob));
    }
    return copied;
}

}  // namespace moc
