#include "core/cold_start.h"

#include "util/logging.h"

namespace moc {

ColdStartReport
ColdStartFromStore(ParamSource& model, const ObjectStore& store) {
    ColdStartReport report;
    const auto extra_blob = store.Get("extra/state");
    MOC_CHECK_ARG(extra_blob.has_value(),
                  "store has no extra/state: not a MoC checkpoint store");
    report.extra = DeserializeExtraState(*extra_blob);

    for (auto& group : model.ParameterGroups()) {
        for (const bool weights : {true, false}) {
            const std::string key = group.key + (weights ? "/w" : "/o");
            const auto blob = store.Get(key);
            if (!blob.has_value()) {
                report.missing.push_back(key);
                continue;
            }
            DeserializeParamList(*blob, group.params, weights);
            ++report.keys_restored;
            report.bytes_read += blob->size();
        }
    }
    return report;
}

Bytes
CopyStore(const ObjectStore& src, ObjectStore& dst) {
    Bytes copied = 0;
    for (const auto& key : src.Keys()) {
        auto blob = src.Get(key);
        MOC_ASSERT(blob.has_value(), "key vanished during copy: " << key);
        copied += blob->size();
        dst.Put(key, std::move(*blob));
    }
    return copied;
}

}  // namespace moc
