#ifndef MOC_CORE_CLUSTER_RECOVERY_H_
#define MOC_CORE_CLUSTER_RECOVERY_H_

/**
 * @file
 * Restart-target selection for cluster checkpoints written by the per-shard
 * commit protocol (src/ckpt/persist_pipeline.h).
 *
 * A cluster generation is offered as a restart target only when the
 * manifest says it is *sealed* — every rank's every shard landed and
 * CRC-verified. A generation torn by a persist failure stays unsealed and
 * is skipped entirely; recovery falls back to the previous sealed one
 * rather than mixing fresh and stale shards (the torn-checkpoint failure
 * mode of latest-wins keying).
 *
 * Within the chosen generation each key resolves through its verified
 * fallback chain; dedup-by-reference versions resolve to the physical blob
 * of the iteration that actually holds the bytes
 * (PersistVersion::PhysicalIteration), and delta versions reconstruct by
 * walking the record chain down to a full write and applying the changed
 * chunks back up (storage/delta_codec.h). A chain broken anywhere — a
 * damaged or missing base — fails the logical CRC check and the key falls
 * back to an older verified version.
 */

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/moc_system.h"
#include "core/placement.h"
#include "storage/manifest.h"
#include "storage/object_store.h"

namespace moc {

/** One shard the restore plan will read. */
struct ShardRestorePlan {
    /** Logical key the generation was written under ("rank0/expert/3/w"). */
    std::string key;
    /**
     * Logical key the restored bytes belong to *now* — key rewritten
     * through the rank remap when the restore targets a different
     * membership than the one that sealed the generation; equal to key
     * otherwise.
     */
    std::string target_key;
    /** Iteration of the version chosen for this key. */
    std::size_t iteration = 0;
    /** Store key of the blob backing it (dedup refs resolved). */
    std::string physical_key;
    std::uint32_t crc = 0;
    Bytes bytes = 0;
};

/** The restore plan for one sealed cluster generation. */
struct ClusterRestorePlan {
    /** The sealed generation selected as restart target. */
    std::size_t generation = 0;
    std::vector<ShardRestorePlan> shards;
    /** Keys with no usable persist version at or below the generation. */
    std::vector<std::string> missing;
    /** Keys whose chosen version is older than the generation. */
    std::vector<DegradedKey> degraded;
};

/** What ExecuteClusterRestore brought back. */
struct ClusterRestoreResult {
    std::size_t generation = 0;
    std::size_t shards_restored = 0;
    Bytes bytes_read = 0;
    /** Restored payloads by logical key. */
    std::map<std::string, Blob> blobs;
    /** Keys restored from an older version than the plan chose. */
    std::vector<DegradedKey> degraded;
    /** Keys whose every candidate blob failed CRC verification. */
    std::vector<std::string> damaged;
};

/**
 * Plans a restore from the newest sealed-and-eligible generation at or
 * below @p max_iteration (no bound when nullopt). Unsealed generations are
 * never considered, whatever shards they managed to write. Returns nullopt
 * when no eligible generation exists.
 *
 * @param remap when non-null, every shard's target_key is the remapped
 *        key — this is what makes recovery world-size independent: a
 *        generation sealed by N ranks restores onto M != N survivors, with
 *        dead ranks' shards retargeted onto the members that absorb them
 *        (BuildRankRemap / AddExpertMoves). The *source* keys and fallback
 *        chains are untouched: the bytes are read exactly as the dead world
 *        wrote them. Should two source keys remap onto one target, the
 *        first restored wins and the rest are reported damaged-by-collision
 *        in the plan's missing list.
 */
std::optional<ClusterRestorePlan> PlanClusterRestore(
    const CheckpointManifest& manifest,
    std::optional<std::size_t> max_iteration = std::nullopt,
    const RankRemap* remap = nullptr);

/**
 * Executes @p plan against @p store: reads every planned shard's physical
 * blob and CRC-verifies it against the manifest record; a damaged blob
 * falls back down the key's verified chain (older versions, dedup refs
 * resolved) before the key is declared damaged.
 */
ClusterRestoreResult ExecuteClusterRestore(const CheckpointManifest& manifest,
                                           const ObjectStore& store,
                                           const ClusterRestorePlan& plan);

}  // namespace moc

#endif  // MOC_CORE_CLUSTER_RECOVERY_H_
