#include "core/recovery_cost.h"

#include "util/logging.h"

namespace moc {

RecoveryCostEstimate
EstimateRecoveryCost(const RecoveryPlan& plan, const RecoveryCostModel& model) {
    MOC_CHECK_ARG(model.memory_read_bandwidth > 0.0 &&
                      model.storage_read_bandwidth > 0.0,
                  "recovery bandwidths must be > 0");
    RecoveryCostEstimate est;
    est.fixed = model.fixed_restart;
    est.memory_read = static_cast<double>(plan.bytes_from_memory) /
                      model.memory_read_bandwidth;
    est.storage_read = static_cast<double>(plan.bytes_from_storage) /
                       model.storage_read_bandwidth;
    const Seconds latency =
        model.per_key_latency * static_cast<double>(plan.decisions.size());
    est.total = est.fixed + est.memory_read + est.storage_read + latency;
    return est;
}

}  // namespace moc
