#ifndef MOC_CORE_PLT_H_
#define MOC_CORE_PLT_H_

/**
 * @file
 * The Proportion-of-Lost-Tokens ledger, implementing Eq. 7 of the paper.
 *
 * During training, each MoE layer reports its per-expert routed token counts
 * each iteration. At every checkpoint event the ledger freezes a copy of the
 * cumulative counters. When a fault forces expert e of layer m back to the
 * state it had at iteration I_e (while training itself restarts from the
 * last checkpoint I_c >= I_e), the updates contributed by tokens routed to e
 * in (I_e, I_c] are permanently lost; the ledger charges exactly those.
 * Counters roll back to I_c on recovery so replayed tokens are not counted
 * twice, making the final denominator the number of unique training
 * assignments (T_i * TopK_i).
 */

#include <cstdint>
#include <map>
#include <vector>

#include "dist/topology.h"

namespace moc {

/**
 * Lost-token accounting across the whole training run.
 */
class PltLedger {
  public:
    PltLedger(std::size_t num_moe_layers, std::size_t num_experts);

    /**
     * Records one iteration's routing outcome for MoE layer @p moe_index:
     * @p tokens_per_expert processed counts, @p assignments = T * top_k.
     */
    void RecordRouting(std::size_t moe_index,
                       const std::vector<std::size_t>& tokens_per_expert,
                       std::size_t assignments);

    /** Freezes cumulative counters as of checkpoint @p iteration. */
    void RecordCheckpointEvent(std::size_t iteration);

    /**
     * Applies a fault recovery.
     * @param restart_iteration the checkpoint iteration training resumes from.
     * @param expert_recovered_iteration [moe layer][expert] -> the iteration
     *        whose state that expert was restored to (<= restart_iteration;
     *        0 for "initial state").
     */
    void OnFaultRecovery(
        std::size_t restart_iteration,
        const std::vector<std::vector<std::size_t>>& expert_recovered_iteration);

    /** Cumulative tokens routed to (layer, expert) since training start. */
    std::uint64_t CumulativeTokens(std::size_t moe_index, ExpertId expert) const;

    /** Cumulative tokens as of checkpoint @p iteration (must be recorded). */
    std::uint64_t CumulativeTokensAt(std::size_t iteration, std::size_t moe_index,
                                     ExpertId expert) const;

    /** Tokens permanently lost for (layer, expert) across all faults so far. */
    std::uint64_t LostTokens(std::size_t moe_index, ExpertId expert) const;

    /** Total lost tokens of one layer. */
    std::uint64_t LayerLostTokens(std::size_t moe_index) const;

    /** Total assignments (denominator term) of one layer. */
    std::uint64_t LayerAssignments(std::size_t moe_index) const;

    /** The PLT metric of Eq. 7, averaged over MoE layers. */
    double Plt() const;

    std::size_t num_moe_layers() const { return cum_.size(); }
    std::size_t num_experts() const { return num_experts_; }

  private:
    struct Snapshot {
        std::vector<std::vector<std::uint64_t>> cum;
        std::vector<std::uint64_t> assignments;
    };

    std::size_t num_experts_;
    /** cum_[m][e]: tokens processed by expert e of layer m so far. */
    std::vector<std::vector<std::uint64_t>> cum_;
    /** assignments_[m]: cumulative attempted assignments of layer m. */
    std::vector<std::uint64_t> assignments_;
    /** lost_[m][e]: permanently lost tokens. */
    std::vector<std::vector<std::uint64_t>> lost_;
    /** Frozen counters per checkpoint iteration. */
    std::map<std::size_t, Snapshot> history_;
};

}  // namespace moc

#endif  // MOC_CORE_PLT_H_
