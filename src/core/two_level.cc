#include "core/two_level.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace moc {

RecoveryDecision
TwoLevelRecoveryPlanner::DecideKey(const CheckpointManifest& manifest,
                                   const std::string& key, std::size_t restart,
                                   bool cap_to_restart,
                                   const std::vector<NodeId>* survivors) const {
    RecoveryDecision d;
    d.key = key;
    if (two_level_) {
        // Never accept a snapshot from beyond the restart point: when
        // recovery falls back to an older generation, a fresher replica
        // holds updates that the replay from @p restart would re-apply.
        if (auto mem = survivors != nullptr
                           ? manifest.LatestMemoryAmong(key, *survivors)
                           : manifest.Latest(StoreLevel::kMemory, key);
            mem.has_value() && mem->iteration <= restart &&
            (!cap_to_restart || mem->iteration == restart)) {
            d.source = RecoverySource::kMemory;
            d.iteration = mem->iteration;
            d.bytes = mem->bytes;
            return d;
        }
    }
    const auto chain = manifest.PersistFallbackChain(key, restart);
    if (!chain.empty()) {
        d.source = RecoverySource::kPersist;
        d.iteration = chain.front().iteration;
        d.bytes = chain.front().bytes;
        d.crc = chain.front().crc;
        return d;
    }
    d.source = RecoverySource::kInitial;
    d.iteration = 0;
    return d;
}

RecoveryPlan
TwoLevelRecoveryPlanner::Plan(const CheckpointManifest& manifest,
                              const std::vector<std::string>& nonexpert_keys,
                              std::size_t num_moe_layers,
                              std::size_t num_experts,
                              std::optional<std::size_t> restart_override,
                              const std::vector<NodeId>* survivors) const {
    RecoveryPlan plan;
    plan.restart_iteration = restart_override.has_value()
        ? *restart_override
        : manifest.LastCompleteIteration(StoreLevel::kPersist).value_or(0);
    plan.expert_recovered_iteration.assign(
        num_moe_layers, std::vector<std::size_t>(num_experts, 0));

    auto account = [&plan](const RecoveryDecision& d) {
        if (d.source == RecoverySource::kMemory) {
            plan.bytes_from_memory += d.bytes;
        } else if (d.source == RecoverySource::kPersist) {
            plan.bytes_from_storage += d.bytes;
        }
        plan.decisions.push_back(d);
    };

    for (const auto& key : nonexpert_keys) {
        RecoveryDecision d = DecideKey(manifest, key, plan.restart_iteration,
                                       /*cap_to_restart=*/true, survivors);
        // A non-expert unit must restore to the restart point exactly: it is
        // saved in full at every checkpoint, so any fresher memory copy is
        // from the same event. Anything older indicates a corrupt manifest.
        MOC_ASSERT(d.source == RecoverySource::kInitial ||
                       d.iteration == plan.restart_iteration,
                   "non-expert unit " << key << " recovered at iteration "
                                      << d.iteration << " != restart point "
                                      << plan.restart_iteration);
        account(d);
    }

    for (std::size_t m = 0; m < num_moe_layers; ++m) {
        for (std::size_t e = 0; e < num_experts; ++e) {
            const std::string base =
                "moe/" + std::to_string(m) + "/expert/" + std::to_string(e);
            RecoveryDecision dw = DecideKey(manifest, base + "/w",
                                            plan.restart_iteration,
                                            /*cap_to_restart=*/false,
                                            survivors);
            RecoveryDecision od = DecideKey(manifest, base + "/o",
                                            plan.restart_iteration,
                                            /*cap_to_restart=*/false,
                                            survivors);
            account(dw);
            account(od);
            // The expert's effective age is its stalest part: updates since
            // then are (at least partially) lost.
            plan.expert_recovered_iteration[m][e] =
                std::min(dw.iteration, od.iteration);
        }
    }

    auto& registry = obs::MetricsRegistry::Instance();
    static obs::Counter& memory_units =
        registry.GetCounter("recovery.units_from_memory");
    static obs::Counter& storage_units =
        registry.GetCounter("recovery.units_from_storage");
    static obs::Histogram& staleness = registry.GetHistogram(
        "recovery.expert_staleness_iters",
        {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
    for (const RecoveryDecision& d : plan.decisions) {
        if (d.source == RecoverySource::kMemory) {
            memory_units.Add();
        } else if (d.source == RecoverySource::kPersist) {
            storage_units.Add();
        }
    }
    for (const auto& layer : plan.expert_recovered_iteration) {
        for (const std::size_t recovered : layer) {
            const std::size_t stale = recovered < plan.restart_iteration
                                          ? plan.restart_iteration - recovered
                                          : 0;
            staleness.Observe(static_cast<double>(stale));
        }
    }
    return plan;
}

}  // namespace moc
