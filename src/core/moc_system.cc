#include "core/moc_system.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "obs/expert_stats.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/run_meta.h"
#include "obs/trace.h"
#include "tensor/serialize.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace moc {

namespace {

/** Byte/event counters shared by every checkpoint event (initial included). */
void
RecordCheckpointMetrics(const CheckpointReport& report, Seconds duration) {
    static obs::Counter& events =
        obs::MetricsRegistry::Instance().GetCounter("ckpt.events");
    static obs::Counter& snapshot_bytes =
        obs::MetricsRegistry::Instance().GetCounter("ckpt.snapshot_bytes");
    static obs::Counter& persist_bytes =
        obs::MetricsRegistry::Instance().GetCounter("ckpt.persist_bytes");
    static obs::Histogram& seconds =
        obs::MetricsRegistry::Instance().GetHistogram("ckpt.duration_seconds");
    events.Add();
    snapshot_bytes.Add(report.snapshot_bytes);
    persist_bytes.Add(report.persist_bytes);
    seconds.Observe(duration);
}

/** A CRC-32 fingerprint of the run's MocSystemConfig, as run metadata. */
std::string
ConfigDigest(const MocSystemConfig& config, const ModelSpec& spec) {
    std::ostringstream desc;
    desc << "k_snapshot=" << config.pec.k_snapshot
         << ";k_persist=" << config.pec.k_persist
         << ";pec_w=" << config.pec.pec_on_weights
         << ";pec_o=" << config.pec.pec_on_optimizer
         << ";policy=" << static_cast<int>(config.pec.policy)
         << ";i_ckpt=" << config.i_ckpt
         << ";two_level=" << config.two_level_recovery
         << ";fully_sharded=" << config.fully_sharded
         << ";dynamic_k=" << config.dynamic_k
         << ";plt_threshold=" << config.plt_threshold
         << ";moe_layers=" << spec.NumMoeLayers()
         << ";experts=" << spec.num_experts;
    const std::string s = desc.str();
    char hex[16];
    std::snprintf(hex, sizeof(hex), "%08x", Crc32(s.data(), s.size()));
    return hex;
}

/** Journal wall-clock pair around one checkpoint or recovery. */
Seconds
NsToSeconds(std::uint64_t begin_ns, std::uint64_t end_ns) {
    return static_cast<double>(end_ns - begin_ns) / 1e9;
}

template <typename T>
void
AppendPod(Blob& out, T value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T
ReadPod(const Blob& in, std::size_t& offset) {
    MOC_CHECK_ARG(offset + sizeof(T) <= in.size(), "blob truncated");
    T value;
    std::memcpy(&value, in.data() + offset, sizeof(T));
    offset += sizeof(T);
    return value;
}

void
AppendTensor(Blob& out, const Tensor& t) {
    const auto blob = SerializeTensor(t);
    AppendPod(out, static_cast<std::uint64_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
}

Tensor
ReadTensor(const Blob& in, std::size_t& offset) {
    const auto size = static_cast<std::size_t>(ReadPod<std::uint64_t>(in, offset));
    MOC_CHECK_ARG(offset + size <= in.size(), "blob truncated");
    Blob piece(in.begin() + static_cast<long>(offset),
               in.begin() + static_cast<long>(offset + size));
    offset += size;
    return DeserializeTensor(piece);
}

bool
Contains(const std::vector<ExpertId>& list, ExpertId e) {
    return std::find(list.begin(), list.end(), e) != list.end();
}

/** Strips a "/w" or "/o" suffix from a store key. */
std::string
BaseKey(const std::string& key) {
    MOC_ASSERT(key.size() > 2, "store key too short");
    return key.substr(0, key.size() - 2);
}

}  // namespace

Blob
SerializeParamList(const std::vector<Parameter*>& params, bool weights) {
    Blob out;
    const std::uint32_t count =
        static_cast<std::uint32_t>(params.size()) * (weights ? 1 : 2);
    AppendPod(out, count);
    for (const auto* p : params) {
        if (weights) {
            AppendTensor(out, p->value());
        } else {
            AppendTensor(out, p->adam_m());
            AppendTensor(out, p->adam_v());
        }
    }
    return out;
}

void
DeserializeParamList(const Blob& blob, const std::vector<Parameter*>& params,
                     bool weights) {
    std::size_t offset = 0;
    const auto count = ReadPod<std::uint32_t>(blob, offset);
    const std::uint32_t expected =
        static_cast<std::uint32_t>(params.size()) * (weights ? 1 : 2);
    MOC_CHECK_ARG(count == expected, "parameter count mismatch in checkpoint blob");
    for (auto* p : params) {
        if (weights) {
            Tensor t = ReadTensor(blob, offset);
            MOC_CHECK_ARG(t.shape() == p->value().shape(),
                          "shape mismatch restoring " << p->name());
            p->value() = std::move(t);
        } else {
            Tensor m = ReadTensor(blob, offset);
            Tensor v = ReadTensor(blob, offset);
            MOC_CHECK_ARG(m.shape() == p->adam_m().shape() &&
                              v.shape() == p->adam_v().shape(),
                          "moment shape mismatch restoring " << p->name());
            p->adam_m() = std::move(m);
            p->adam_v() = std::move(v);
        }
    }
}

Blob
SerializeExtraState(const ExtraState& extra) {
    Blob out;
    AppendPod(out, static_cast<std::uint64_t>(extra.iteration));
    AppendPod(out, static_cast<std::uint64_t>(extra.adam_step));
    for (auto s : extra.gating_rng.s) {
        AppendPod(out, s);
    }
    AppendPod(out, static_cast<std::uint8_t>(extra.gating_rng.have_cached_gaussian));
    AppendPod(out, extra.gating_rng.cached_gaussian);
    return out;
}

ExtraState
DeserializeExtraState(const Blob& blob) {
    ExtraState extra;
    std::size_t offset = 0;
    extra.iteration = static_cast<std::size_t>(ReadPod<std::uint64_t>(blob, offset));
    extra.adam_step = static_cast<std::size_t>(ReadPod<std::uint64_t>(blob, offset));
    for (auto& s : extra.gating_rng.s) {
        s = ReadPod<std::uint64_t>(blob, offset);
    }
    extra.gating_rng.have_cached_gaussian = ReadPod<std::uint8_t>(blob, offset) != 0;
    extra.gating_rng.cached_gaussian = ReadPod<double>(blob, offset);
    return extra;
}

MocCheckpointSystem::MocCheckpointSystem(const MocSystemConfig& config,
                                         ParamSource& model,
                                         const RankTopology& topology,
                                         const ModelSpec& spec,
                                         const ExtraState& initial_extra)
    : config_(config),
      model_(model),
      topology_(topology),
      spec_(spec),
      ledger_(std::max<std::size_t>(1, spec.NumMoeLayers()), spec.num_experts),
      memory_(topology.num_nodes()) {
    MOC_CHECK_ARG(config.i_ckpt >= 1, "i_ckpt must be >= 1");
    MOC_CHECK_ARG(spec.NumMoeLayers() >= 1, "MoC-System requires an MoE model");

    std::unique_ptr<ExpertSelector> selector;
    if (config.pec.policy == SelectionPolicy::kSequential) {
        selector = std::make_unique<SequentialSelector>(spec.num_experts);
    } else {
        selector = std::make_unique<LoadAwareSelector>(
            spec.num_experts, [this](std::size_t m, ExpertId e) {
                // Unsaved updates since this expert's last snapshot.
                const std::size_t last = last_snap_iter_[m][e];
                return ledger_.CumulativeTokens(m, e) -
                       ledger_.CumulativeTokensAt(last, m, e);
            });
    }
    planner_ = std::make_unique<PecPlanner>(spec.NumMoeLayers(), spec.num_experts,
                                            config.pec, std::move(selector));
    if (config.dynamic_k) {
        dynamic_k_ = std::make_unique<DynamicKController>(
            config.pec.k_snapshot, spec.num_experts, config.plt_threshold);
    }
    last_snap_iter_.assign(spec.NumMoeLayers(),
                           std::vector<std::size_t>(spec.num_experts, 0));

    // Static non-expert placement from the sharding planner.
    const StateBytes bytes;
    ModelStateInventory inventory(spec, bytes);
    ShardingOptions options;
    options.equal_expert = config.fully_sharded;
    options.equal_nonexpert = config.fully_sharded;
    ShardingPlanner sharder(inventory, topology, options);
    const ShardPlan plan = sharder.PlanFull();
    for (const auto* module : inventory.NonExpertModules()) {
        if (auto owner = plan.FindWeightOwner(module->key)) {
            nonexpert_rank_[module->key] = *owner;
        }
    }

    MOC_CHECK_ARG(config.persist_generations >= 1,
                  "persist_generations must be >= 1");

    // The resilient persist path: retries + write verification over the
    // configured backend, with read repair from surviving memory replicas
    // and the versioned/plain twin key (docs/FAULT_MODEL.md).
    persist_ = std::make_unique<ResilientStore>(
        PersistBackend(), config_.retry,
        [this](const std::string& damaged) -> std::optional<Blob> {
            std::string plain = damaged;
            std::optional<std::size_t> iteration;
            if (damaged.rfind("gen/", 0) == 0) {
                const auto slash = damaged.find('/', 4);
                if (slash != std::string::npos) {
                    plain = damaged.substr(slash + 1);
                    iteration = static_cast<std::size_t>(
                        std::stoull(damaged.substr(4, slash - 4)));
                }
            }
            // Surviving memory replica of the same key (two-level bonus).
            if (auto mem = manifest_.Latest(StoreLevel::kMemory, plain)) {
                if (auto blob = memory_.Node(mem->node).Get(plain)) {
                    return blob;
                }
            }
            // The twin copy in the backend itself; the caller CRC-checks.
            auto read_raw = [this](const std::string& key)
                -> std::optional<Blob> {
                try {
                    return PersistBackend().Get(key);
                } catch (const std::runtime_error&) {
                    return std::nullopt;
                }
            };
            if (iteration.has_value()) {
                return read_raw(plain);
            }
            if (auto latest = manifest_.Latest(StoreLevel::kPersist, plain)) {
                return read_raw(GenKey(latest->iteration, plain));
            }
            return std::nullopt;
        });

    // Per-expert telemetry + run metadata restart with each bound system.
    obs::ExpertStatsRegistry::Instance().Configure(spec.NumMoeLayers(),
                                                   spec.num_experts);
    obs::SetRunConfigDigest(ConfigDigest(config_, spec_));

    // Initial full checkpoint at iteration 0: recovery is always defined.
    const obs::TraceSpan span("ckpt.initial_checkpoint", "ckpt");
    const std::uint64_t begin_ns = obs::Tracer::NowNs();
    obs::EventJournal::Instance().Append(
        {.kind = obs::EventKind::kCkptBegin,
         .k = config_.pec.k_snapshot,
         .detail = "initial full checkpoint"});
    CheckpointReport report;
    for (const auto& group : model_.ParameterGroups()) {
        SaveGroup(group, 0, /*weights=*/true, true, true, report);
        SaveGroup(group, 0, /*weights=*/false, true, true, report);
    }
    PersistShard("extra/state", SerializeExtraState(initial_extra), 0,
                 /*fatal_on_failure=*/true);
    manifest_.MarkCheckpointComplete(StoreLevel::kMemory, 0);
    manifest_.MarkCheckpointComplete(StoreLevel::kPersist, 0);
    WriteManifestBlob();
    obs::EventJournal::Instance().Append(
        {.kind = obs::EventKind::kCkptEnd,
         .bytes = report.snapshot_bytes + report.persist_bytes,
         .plt = 0.0,
         .k = config_.pec.k_snapshot,
         .detail = "initial full checkpoint"});
    RecordCheckpointMetrics(report, NsToSeconds(begin_ns, obs::Tracer::NowNs()));
}

std::string
MocCheckpointSystem::GenKey(std::size_t iteration, const std::string& key) {
    return "gen/" + std::to_string(iteration) + "/" + key;
}

ObjectStore&
MocCheckpointSystem::PersistBackend() {
    return config_.persist_backend != nullptr ? *config_.persist_backend
                                              : storage_;
}

void
MocCheckpointSystem::PersistShard(const std::string& key, Blob blob,
                                  std::size_t iteration,
                                  bool fatal_on_failure) {
    const Bytes size = blob.size();
    // Manifest CRCs are CRC-32C: the blob's embedded per-tensor IEEE
    // trailers make a same-polynomial outer CRC payload-blind (see
    // util/crc32.h).
    const std::uint32_t crc = Crc32c(blob.data(), blob.size());
    bool verified = true;
    try {
        persist_->Put(key, blob);
        persist_->Put(GenKey(iteration, key), std::move(blob));
    } catch (const StoreError& e) {
        if (fatal_on_failure) {
            throw;
        }
        verified = false;
        static obs::Counter& failures =
            obs::MetricsRegistry::Instance().GetCounter(
                "ckpt.persist_shard_failures");
        failures.Add();
        obs::EventJournal::Instance().Append(
            {.kind = obs::EventKind::kStorageFault,
             .iteration = iteration,
             .bytes = size,
             .detail = std::string("persist failed: ") + e.what()});
        MOC_WARN << "ckpt: persist of " << key << " failed ("
                 << StoreErrorKindName(e.kind())
                 << "); shard recorded unverified";
    }
    manifest_.RecordPersistVersion(key, iteration, size, crc, verified);
}

void
MocCheckpointSystem::WriteManifestBlob() {
    const std::string json = manifest_.ToJson();
    try {
        persist_->Put("meta/manifest", Blob(json.begin(), json.end()));
    } catch (const StoreError& e) {
        obs::EventJournal::Instance().Append(
            {.kind = obs::EventKind::kStorageFault,
             .detail = std::string("manifest write failed: ") + e.what()});
        MOC_WARN << "ckpt: manifest write failed: " << e.what();
    }
}

std::optional<Blob>
MocCheckpointSystem::ReadPersistVersion(const std::string& key,
                                        const PersistVersion& version) const {
    // The plain latest-wins key holds this version only when it is the
    // newest; the generation twin is authoritative either way. Trying the
    // plain key first lets GetChecked read-repair it in place.
    std::vector<std::string> sources;
    if (const auto latest = manifest_.Latest(StoreLevel::kPersist, key);
        latest.has_value() && latest->iteration == version.iteration) {
        sources.push_back(key);
    }
    sources.push_back(GenKey(version.iteration, key));
    for (const auto& source : sources) {
        try {
            if (auto blob = persist_->GetChecked(source, version.crc)) {
                return blob;
            }
        } catch (const StoreError&) {
            // Damaged or retry-exhausted under this name; try the twin.
        }
    }
    return std::nullopt;
}

std::vector<NodeId>
MocCheckpointSystem::ExpertOwnerNodes(ExpertId expert) const {
    const std::size_t owner = topology_.OwnerEpRank(expert, spec_.num_experts);
    std::vector<NodeId> nodes;
    for (std::size_t g = 0; g < topology_.NumEpGroups(); ++g) {
        const NodeId node = topology_.NodeOf(topology_.RankOf(g, owner));
        if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
            nodes.push_back(node);
        }
    }
    return nodes;
}

NodeId
MocCheckpointSystem::NonExpertOwnerNode(const std::string& key) const {
    auto it = nonexpert_rank_.find(key);
    const RankId rank = it == nonexpert_rank_.end() ? 0 : it->second;
    return topology_.NodeOf(rank);
}

void
MocCheckpointSystem::SaveGroup(const ParamGroup& group, std::size_t iteration,
                               bool weights, bool to_memory, bool to_persist,
                               CheckpointReport& report) {
    if (!to_memory && !to_persist) {
        return;
    }
    const Blob blob = SerializeParamList(group.params, weights);
    const std::string key = group.key + (weights ? "/w" : "/o");
    const Bytes size = blob.size();

    std::vector<NodeId> nodes;
    if (group.kind == ModuleKind::kExpert) {
        nodes = ExpertOwnerNodes(group.expert);
    } else {
        nodes = {NonExpertOwnerNode(group.key)};
    }
    auto& journal = obs::EventJournal::Instance();
    auto& expert_stats = obs::ExpertStatsRegistry::Instance();
    if (to_memory) {
        for (NodeId node : nodes) {
            memory_.Node(node).Put(key, blob);
            manifest_.RecordSave(StoreLevel::kMemory, key, iteration, node, size);
            report.snapshot_bytes += size;
            journal.Append({.kind = obs::EventKind::kSnapshot,
                            .iteration = iteration,
                            .scope = static_cast<std::int64_t>(node),
                            .bytes = size,
                            .detail = key});
        }
        if (group.kind == ModuleKind::kExpert) {
            expert_stats.OnSnapshot(group.moe_index, group.expert, iteration,
                                    size * nodes.size());
        }
    }
    if (to_persist) {
        // The initial checkpoint must land: every later recovery bottoms
        // out on generation 0.
        PersistShard(key, blob, iteration, /*fatal_on_failure=*/iteration == 0);
        report.persist_bytes += size;
        journal.Append({.kind = obs::EventKind::kPersist,
                        .iteration = iteration,
                        .bytes = size,
                        .detail = key});
        if (group.kind == ModuleKind::kExpert) {
            expert_stats.OnPersist(group.moe_index, group.expert, iteration,
                                   size);
        }
    }
}

bool
MocCheckpointSystem::ShouldCheckpoint(std::size_t iteration) const {
    return iteration > 0 && iteration % config_.i_ckpt == 0;
}

CheckpointReport
MocCheckpointSystem::Checkpoint(std::size_t iteration, const ExtraState& extra) {
    obs::TraceContext trace_ctx;
    trace_ctx.generation = iteration;
    trace_ctx.iteration = iteration;
    trace_ctx.phase = "ckpt";
    const obs::TraceContextScope trace_scope(trace_ctx);
    const obs::TraceSpan span("ckpt.checkpoint", "ckpt");
    const std::uint64_t begin_ns = obs::Tracer::NowNs();
    obs::ExpertStatsRegistry::Instance().SetIteration(iteration);
    obs::EventJournal::Instance().Append(
        {.kind = obs::EventKind::kCkptBegin,
         .iteration = iteration,
         .k = planner_->config().k_snapshot,
         .detail = {}});
    const PecSelection selection = planner_->Plan(ckpt_count_);
    CheckpointReport report;
    report.iteration = iteration;
    const PecConfig& pec = planner_->config();

    for (const auto& group : model_.ParameterGroups()) {
        if (group.kind != ModuleKind::kExpert) {
            SaveGroup(group, iteration, true, true, true, report);
            SaveGroup(group, iteration, false, true, true, report);
            continue;
        }
        const std::size_t m = group.moe_index;
        const ExpertId e = group.expert;
        const bool in_snap = Contains(selection.snapshot[m], e);
        const bool in_pers = Contains(selection.persist[m], e);
        const bool snap_w = !pec.pec_on_weights || in_snap;
        const bool pers_w = !pec.pec_on_weights || in_pers;
        const bool snap_o = !pec.pec_on_optimizer || in_snap;
        const bool pers_o = !pec.pec_on_optimizer || in_pers;
        SaveGroup(group, iteration, true, snap_w, pers_w, report);
        SaveGroup(group, iteration, false, snap_o, pers_o, report);
        if (snap_w || snap_o) {
            last_snap_iter_[m][e] = iteration;
        }
    }

    PersistShard("extra/state", SerializeExtraState(extra), iteration,
                 /*fatal_on_failure=*/false);
    manifest_.MarkCheckpointComplete(StoreLevel::kMemory, iteration);
    manifest_.MarkCheckpointComplete(StoreLevel::kPersist, iteration);
    for (const auto& [key, gen] :
         manifest_.PrunePersistGenerations(config_.persist_generations)) {
        persist_->Erase(GenKey(gen, key));
    }
    WriteManifestBlob();
    ledger_.RecordCheckpointEvent(iteration);
    ++ckpt_count_;
    // The live time-series ring (obs/timeseries.h) reads this gauge each
    // iteration; recovery.plt only updates on an actual recovery.
    static obs::Gauge& plt_gauge =
        obs::MetricsRegistry::Instance().GetGauge("ckpt.plt");
    plt_gauge.Set(ledger_.Plt());
    obs::EventJournal::Instance().Append(
        {.kind = obs::EventKind::kCkptEnd,
         .iteration = iteration,
         .bytes = report.snapshot_bytes + report.persist_bytes,
         .plt = ledger_.Plt(),
         .k = planner_->config().k_snapshot,
         .detail = {}});
    RecordCheckpointMetrics(report, NsToSeconds(begin_ns, obs::Tracer::NowNs()));
    return report;
}

void
MocCheckpointSystem::RecordRouting(const std::vector<MoeLayer*>& layers) {
    MOC_CHECK_ARG(layers.size() == ledger_.num_moe_layers(),
                  "MoE layer count mismatch");
    for (std::size_t m = 0; m < layers.size(); ++m) {
        const RoutingStats& stats = layers[m]->last_stats();
        ledger_.RecordRouting(m, stats.tokens_per_expert, stats.assignments);
    }
}

RecoveryReport
MocCheckpointSystem::RecoverFromFault(const std::vector<NodeId>& failed_nodes) {
    obs::TraceContext trace_ctx;
    trace_ctx.phase = "recover";
    const obs::TraceContextScope trace_scope(trace_ctx);
    const obs::TraceSpan span("ckpt.recover", "fault");
    const std::uint64_t begin_ns = obs::Tracer::NowNs();
    auto& journal = obs::EventJournal::Instance();
    // The trainer advances the expert-stats iteration every step, so it is
    // the best available "iteration at fault time" stamp.
    const std::uint64_t fault_iteration =
        obs::ExpertStatsRegistry::Instance().iteration();
    {
        std::ostringstream nodes;
        for (std::size_t i = 0; i < failed_nodes.size(); ++i) {
            nodes << (i == 0 ? "nodes=" : ",") << failed_nodes[i];
        }
        journal.Append({.kind = obs::EventKind::kFault,
                        .iteration = fault_iteration,
                        .scope = failed_nodes.empty()
                                     ? obs::kGlobalScope
                                     : static_cast<std::int64_t>(
                                           failed_nodes.front()),
                        .detail = nodes.str()});
    }
    journal.Append({.kind = obs::EventKind::kRecoveryBegin,
                    .iteration = fault_iteration,
                    .detail = {}});
    for (NodeId node : failed_nodes) {
        memory_.FailNode(node);
        manifest_.DropNodeMemory(node);
    }

    // Collect the non-expert store keys from the model's groups.
    auto groups = model_.ParameterGroups();
    std::map<std::string, const ParamGroup*> by_key;
    std::vector<std::string> nonexpert_keys;
    for (const auto& group : groups) {
        by_key[group.key] = &group;
        if (group.kind != ModuleKind::kExpert) {
            nonexpert_keys.push_back(group.key + "/w");
            nonexpert_keys.push_back(group.key + "/o");
        }
    }

    TwoLevelRecoveryPlanner recovery_planner(config_.two_level_recovery);
    RecoveryReport report;
    static obs::Counter& degraded_counter =
        obs::MetricsRegistry::Instance().GetCounter("recovery.degraded_keys");
    static obs::Counter& fallback_counter =
        obs::MetricsRegistry::Instance().GetCounter(
            "recovery.generation_fallbacks");

    // Restart candidates: verified generations newest-first, then sealed
    // generations with unverified shards as last resorts (the strict
    // per-key checks below still hold, so they either restore consistently
    // or get marked corrupt); for legacy manifests with no generation
    // records at all, the last completed checkpoint.
    std::vector<std::size_t> candidates = manifest_.EligibleGenerations();
    std::vector<std::size_t> last_resort;
    for (const auto& info : manifest_.Generations()) {
        if (info.sealed && !info.marked_corrupt && !info.eligible) {
            last_resort.push_back(info.iteration);
        }
    }
    candidates.insert(candidates.end(), last_resort.rbegin(),
                      last_resort.rend());
    if (candidates.empty()) {
        candidates.push_back(
            manifest_.LastCompleteIteration(StoreLevel::kPersist).value_or(0));
    }

    bool restored = false;
    std::map<std::string, std::size_t> restored_iteration;
    for (std::size_t ci = 0; ci < candidates.size() && !restored; ++ci) {
        const std::size_t restart = candidates[ci];
        report.plan = recovery_planner.Plan(manifest_, nonexpert_keys,
                                            ledger_.num_moe_layers(),
                                            ledger_.num_experts(), restart);
        report.degraded.clear();
        restored_iteration.clear();
        bool generation_ok = true;
        for (const auto& decision : report.plan.decisions) {
            if (decision.source == RecoverySource::kInitial) {
                throw StoreError(StoreErrorKind::kCorrupt, decision.key,
                                 "no recoverable version survives; even the "
                                 "initial checkpoint is damaged");
            }
            const bool weights = decision.key.back() == 'w';
            const auto group_it = by_key.find(BaseKey(decision.key));
            MOC_CHECK_ARG(group_it != by_key.end(),
                          "checkpointed key has no model group: " << decision.key);
            const bool is_expert = group_it->second->kind == ModuleKind::kExpert;
            std::optional<Blob> blob;
            std::size_t got_iteration = decision.iteration;
            if (decision.source == RecoverySource::kMemory) {
                const auto version =
                    manifest_.Latest(StoreLevel::kMemory, decision.key);
                MOC_ASSERT(version.has_value(), "manifest/plan disagreement");
                blob = memory_.Node(version->node).Get(decision.key);
                MOC_ASSERT(blob.has_value(), "memory lost a manifest-tracked "
                                             "key: " << decision.key);
            } else {
                // Walk the verified-version fallback chain; every damaged
                // version is marked so later recoveries skip it.
                for (const auto& version :
                     manifest_.PersistFallbackChain(decision.key, restart)) {
                    blob = ReadPersistVersion(decision.key, version);
                    if (blob.has_value()) {
                        got_iteration = version.iteration;
                        break;
                    }
                    manifest_.MarkPersistCorrupt(decision.key,
                                                 version.iteration);
                    journal.Append(
                        {.kind = obs::EventKind::kStorageFault,
                         .iteration = version.iteration,
                         .bytes = version.bytes,
                         .detail = "corrupt shard " + decision.key + " @" +
                                   std::to_string(version.iteration)});
                }
                if (!blob.has_value() && is_expert) {
                    throw StoreError(StoreErrorKind::kCorrupt, decision.key,
                                     "every persisted version of this unit is "
                                     "corrupt and no memory replica survives");
                }
                if (!blob.has_value() ||
                    (!is_expert && got_iteration != restart)) {
                    // A non-expert unit must restore the restart generation
                    // exactly (the plan itself may already point at an older
                    // version when the restart shard never verified); this
                    // generation is unusable.
                    generation_ok = false;
                    break;
                }
                if (got_iteration != decision.iteration) {
                    degraded_counter.Add();
                    report.degraded.push_back(
                        {decision.key, decision.iteration, got_iteration,
                         "corrupt shard; restored older verified version"});
                    journal.Append(
                        {.kind = obs::EventKind::kDegradedRecovery,
                         .iteration = got_iteration,
                         .detail = "key=" + decision.key + ";planned=" +
                                   std::to_string(decision.iteration) +
                                   ";restored=" +
                                   std::to_string(got_iteration) +
                                   ";reason=corrupt_shard"});
                }
            }
            DeserializeParamList(*blob, group_it->second->params, weights);
            restored_iteration[decision.key] = got_iteration;
        }
        if (generation_ok) {
            // Other crucial states must come from the restart generation.
            const auto extra_chain =
                manifest_.PersistFallbackChain("extra/state", restart);
            std::optional<Blob> extra_blob;
            if (!extra_chain.empty() &&
                extra_chain.front().iteration == restart) {
                extra_blob =
                    ReadPersistVersion("extra/state", extra_chain.front());
                if (!extra_blob.has_value()) {
                    manifest_.MarkPersistCorrupt("extra/state", restart);
                }
            } else if (extra_chain.empty()) {
                // Legacy manifests never tracked extra state; read it raw.
                extra_blob = storage_.Get("extra/state");
            }
            if (extra_blob.has_value()) {
                report.extra = DeserializeExtraState(*extra_blob);
                restored = true;
            } else {
                generation_ok = false;
            }
        }
        if (!generation_ok) {
            manifest_.MarkGenerationCorrupt(restart);
            fallback_counter.Add();
            ++report.generation_fallbacks;
            journal.Append(
                {.kind = obs::EventKind::kDegradedRecovery,
                 .iteration = restart,
                 .detail = "generation " + std::to_string(restart) +
                           " unusable; falling back to an older one"});
        }
    }
    if (!restored) {
        WriteManifestBlob();  // record what recovery learned about damage
        throw StoreError(StoreErrorKind::kCorrupt, "meta/manifest",
                         "no restartable checkpoint generation survives");
    }
    MOC_ASSERT(report.extra.iteration == report.plan.restart_iteration,
               "extra state iteration disagrees with the restart point");

    // The effective expert age is what was actually restored, which may be
    // older than planned when shards fell back.
    for (std::size_t m = 0; m < ledger_.num_moe_layers(); ++m) {
        for (ExpertId e = 0; e < ledger_.num_experts(); ++e) {
            const std::string base =
                "moe/" + std::to_string(m) + "/expert/" + std::to_string(e);
            const auto w = restored_iteration.find(base + "/w");
            const auto o = restored_iteration.find(base + "/o");
            if (w != restored_iteration.end() &&
                o != restored_iteration.end()) {
                report.plan.expert_recovered_iteration[m][e] =
                    std::min(w->second, o->second);
            }
        }
    }
    WriteManifestBlob();

    ledger_.OnFaultRecovery(report.plan.restart_iteration,
                            report.plan.expert_recovered_iteration);
    // Snapshot bookkeeping cannot reference erased (replayed) history.
    for (auto& layer : last_snap_iter_) {
        for (auto& it : layer) {
            it = std::min(it, report.plan.restart_iteration);
        }
    }

    for (NodeId node : failed_nodes) {
        memory_.RestartNode(node);
    }

    report.plt = ledger_.Plt();
    const std::size_t k_before = planner_->config().k_snapshot;
    if (dynamic_k_ != nullptr) {
        // Scale both levels proportionally: recovery staleness is bounded by
        // the persist rotation, so K_persist must grow with K_pec.
        const std::size_t k = dynamic_k_->OnFaultRecovery(report.plt);
        const std::size_t persist = std::max<std::size_t>(
            1, k * config_.pec.k_persist / config_.pec.k_snapshot);
        planner_->SetK(k, std::min(k, persist));
    }
    report.k_after = planner_->config().k_snapshot;

    // Per-expert attribution: clamp staleness bookkeeping to the restart
    // point and refresh each cell's lost-token total from the ledger.
    auto& expert_stats = obs::ExpertStatsRegistry::Instance();
    expert_stats.OnRecovery(report.plan.restart_iteration);
    for (std::size_t m = 0; m < ledger_.num_moe_layers(); ++m) {
        for (ExpertId e = 0; e < ledger_.num_experts(); ++e) {
            expert_stats.SetLostTokens(m, e, ledger_.LostTokens(m, e));
        }
    }

    journal.Append({.kind = obs::EventKind::kRecoveryEnd,
                    .iteration = report.plan.restart_iteration,
                    .bytes = report.plan.bytes_from_memory +
                             report.plan.bytes_from_storage,
                    .plt = report.plt,
                    .k = report.k_after,
                    .detail = {}});
    if (report.k_after != k_before) {
        journal.Append({.kind = obs::EventKind::kDynamicKBump,
                        .iteration = report.plan.restart_iteration,
                        .plt = report.plt,
                        .k = report.k_after,
                        .detail = {}});
    }

    auto& registry = obs::MetricsRegistry::Instance();
    static obs::Counter& events = registry.GetCounter("recovery.events");
    static obs::Counter& memory_bytes =
        registry.GetCounter("recovery.bytes_from_memory");
    static obs::Counter& storage_bytes =
        registry.GetCounter("recovery.bytes_from_storage");
    static obs::Counter& transitions = registry.GetCounter("dynk.transitions");
    static obs::Gauge& plt_gauge = registry.GetGauge("recovery.plt");
    static obs::Gauge& k_gauge = registry.GetGauge("dynk.k_snapshot");
    static obs::Histogram& seconds =
        registry.GetHistogram("recovery.duration_seconds");
    events.Add();
    memory_bytes.Add(report.plan.bytes_from_memory);
    storage_bytes.Add(report.plan.bytes_from_storage);
    if (report.k_after != k_before) {
        transitions.Add();
    }
    plt_gauge.Set(report.plt);
    k_gauge.Set(static_cast<double>(report.k_after));
    seconds.Observe(NsToSeconds(begin_ns, obs::Tracer::NowNs()));
    return report;
}

}  // namespace moc
