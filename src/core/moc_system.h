#ifndef MOC_CORE_MOC_SYSTEM_H_
#define MOC_CORE_MOC_SYSTEM_H_

/**
 * @file
 * The Mixture-of-Checkpoint system facade: everything a training loop needs
 * to checkpoint a real MoE model with PEC, fully sharded placement,
 * two-level saving/recovery, PLT accounting, and Dynamic-K.
 *
 * The facade operates on any ParamSource whose parameter groups use
 * inventory keys, against a per-node memory pool (snapshot level) and a
 * persistent store (persist level). Fault injection wipes node memories;
 * recovery restores every unit from its freshest reachable version and
 * charges the PLT ledger for the staleness of partially-saved experts.
 */

#include <memory>
#include <vector>

#include "core/dynamic_k.h"
#include "core/pec.h"
#include "core/plt.h"
#include "core/sharding.h"
#include "core/two_level.h"
#include "nn/moe_layer.h"
#include "nn/parameter.h"
#include "storage/manifest.h"
#include "storage/memory_store.h"
#include "storage/persistent_store.h"
#include "storage/resilient_store.h"
#include "util/rng.h"

namespace moc {

/** Configuration of the checkpoint system for one training run. */
struct MocSystemConfig {
    PecConfig pec;
    /** Checkpoint every i_ckpt iterations. */
    std::size_t i_ckpt = 16;
    /** Use two-level recovery (memory snapshots on surviving nodes). */
    bool two_level_recovery = true;
    /** Place non-expert shards with equal sharding (vs all on rank 0). */
    bool fully_sharded = true;
    /** Enable the Dynamic-K controller. */
    bool dynamic_k = false;
    double plt_threshold = kDefaultPltThreshold;
    /**
     * External persistent backend (e.g. a FileStore, possibly wrapped in a
     * FaultyStore for injection runs). The caller keeps ownership and must
     * outlive the system. nullptr = the internal simulated PersistentStore.
     */
    ObjectStore* persist_backend = nullptr;
    /** Retry/verify policy of the resilient persist path. */
    RetryPolicy retry{.initial_backoff_s = 1e-5, .max_backoff_s = 1e-3};
    /** Verified checkpoint generations retained as fallback restart targets. */
    std::size_t persist_generations = 2;
};

/** Non-tensor state saved with every checkpoint ("other crucial states"). */
struct ExtraState {
    std::size_t iteration = 0;
    std::size_t adam_step = 0;
    Rng::State gating_rng{};
};

/** Byte accounting of one checkpoint event. */
struct CheckpointReport {
    std::size_t iteration = 0;
    Bytes snapshot_bytes = 0;
    Bytes persist_bytes = 0;
};

/** One unit restored from older bytes than the recovery plan wanted. */
struct DegradedKey {
    std::string key;
    /** Iteration the plan chose (before damage was discovered on read). */
    std::size_t planned_iteration = 0;
    /** Iteration of the verified version actually restored. */
    std::size_t restored_iteration = 0;
    std::string reason;
};

/** Outcome of one fault recovery. */
struct RecoveryReport {
    RecoveryPlan plan;
    /** Ledger PLT after charging this fault. */
    double plt = 0.0;
    /** K_snapshot in force after Dynamic-K recalibration. */
    std::size_t k_after = 0;
    ExtraState extra;
    /** Expert units that fell back to an older verified version. */
    std::vector<DegradedKey> degraded;
    /** Whole restart generations abandoned as corrupt during this recovery. */
    std::size_t generation_fallbacks = 0;
};

/**
 * The MoC-System checkpoint facade bound to one model instance.
 */
class MocCheckpointSystem {
  public:
    /**
     * Binds the system to @p model. Writes a full initial checkpoint at
     * iteration 0 so recovery is always well-defined.
     *
     * @param spec the model's architecture (must agree with the model's
     *        parameter-group keys).
     */
    MocCheckpointSystem(const MocSystemConfig& config, ParamSource& model,
                        const RankTopology& topology, const ModelSpec& spec,
                        const ExtraState& initial_extra);

    /** True iff a checkpoint event is due after @p iteration. */
    bool ShouldCheckpoint(std::size_t iteration) const;

    /** Runs one checkpoint event capturing the state of @p iteration. */
    CheckpointReport Checkpoint(std::size_t iteration, const ExtraState& extra);

    /** Feeds one iteration's routing stats from the model's MoE layers. */
    void RecordRouting(const std::vector<MoeLayer*>& layers);

    /**
     * Injects failures of @p failed_nodes and recovers the model. Restores
     * parameter and optimizer tensors in place, returns the restart point
     * and recovered extra state.
     */
    RecoveryReport RecoverFromFault(const std::vector<NodeId>& failed_nodes);

    PltLedger& ledger() { return ledger_; }
    const CheckpointManifest& manifest() const { return manifest_; }
    NodeMemoryPool& memory() { return memory_; }
    PersistentStore& storage() { return storage_; }
    /** The retry/verify wrapper every persist write and read goes through. */
    ResilientStore& persist() { return *persist_; }
    const MocSystemConfig& config() const { return config_; }
    std::size_t checkpoint_count() const { return ckpt_count_; }

    /** Versioned twin of @p key in checkpoint generation @p iteration. */
    static std::string GenKey(std::size_t iteration, const std::string& key);

    /** Current K_snapshot (may have been raised by Dynamic-K). */
    std::size_t current_k_snapshot() const { return planner_->config().k_snapshot; }

  private:
    /** Nodes whose memory holds the snapshot of (moe layer m, expert e). */
    std::vector<NodeId> ExpertOwnerNodes(ExpertId expert) const;

    /** Node that snapshots non-expert group @p key. */
    NodeId NonExpertOwnerNode(const std::string& key) const;

    void SaveGroup(const ParamGroup& group, std::size_t iteration, bool weights,
                   bool to_memory, bool to_persist, CheckpointReport& report);

    /** The configured external backend, or the internal simulated store. */
    ObjectStore& PersistBackend();

    /**
     * Persists @p blob under @p key and its generation twin through the
     * resilient path, recording the (possibly unverified) version in the
     * manifest. @p fatal_on_failure rethrows instead of degrading (the
     * initial checkpoint must land or recovery is undefined).
     */
    void PersistShard(const std::string& key, Blob blob, std::size_t iteration,
                      bool fatal_on_failure);

    /** Writes the manifest JSON to meta/manifest (best-effort). */
    void WriteManifestBlob();

    /**
     * Reads one persisted version of @p key, CRC-verified, trying the
     * plain latest-wins key (when this is the newest version) and the
     * generation twin. nullopt = every copy of this version is damaged.
     */
    std::optional<Blob> ReadPersistVersion(const std::string& key,
                                           const PersistVersion& version) const;

    MocSystemConfig config_;
    ParamSource& model_;
    const RankTopology& topology_;
    ModelSpec spec_;
    std::unique_ptr<PecPlanner> planner_;
    std::unique_ptr<DynamicKController> dynamic_k_;
    PltLedger ledger_;
    CheckpointManifest manifest_;
    NodeMemoryPool memory_;
    PersistentStore storage_;
    /** Resilient wrapper over PersistBackend(); see docs/FAULT_MODEL.md. */
    std::unique_ptr<ResilientStore> persist_;
    /** Static placement of non-expert groups (key -> DP rank). */
    std::map<std::string, RankId> nonexpert_rank_;
    /** last_snap_iter_[m][e]: iteration of that expert's last snapshot. */
    std::vector<std::vector<std::size_t>> last_snap_iter_;
    std::size_t ckpt_count_ = 0;
};

/** Serializes the weights (or Adam moments) of a parameter list. */
Blob SerializeParamList(const std::vector<Parameter*>& params, bool weights);

/** Restores from a blob produced by SerializeParamList. */
void DeserializeParamList(const Blob& blob, const std::vector<Parameter*>& params,
                          bool weights);

/** Packs/unpacks ExtraState. */
Blob SerializeExtraState(const ExtraState& extra);
ExtraState DeserializeExtraState(const Blob& blob);

}  // namespace moc

#endif  // MOC_CORE_MOC_SYSTEM_H_
