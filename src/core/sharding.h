#ifndef MOC_CORE_SHARDING_H_
#define MOC_CORE_SHARDING_H_

/**
 * @file
 * Checkpoint shard planning (Section 4).
 *
 * A ShardPlan maps every byte that a checkpoint event must save to a DP
 * rank. The planner supports:
 *  - the Megatron-DeepSpeed baseline (rank 0 saves all non-expert weights,
 *    EP-group-0 saves expert weights, Fig. 7a);
 *  - equal sharding of the expert part across EP groups ("EE", Section 4.1);
 *  - equal layer-granular sharding of the non-expert part ("EN", 4.2);
 *  - adaptive PEC-aware sharding of the non-expert part ("AN", 4.3): a
 *    greedy allocator that assigns the largest modules to the ranks with the
 *    least accumulated (expert) workload.
 *
 * ZeRO-2 optimizer states are partitioned by construction: the non-expert
 * optimizer is split evenly across all DP ranks, and each expert's optimizer
 * is split across the ranks replicating that expert (one per EP group).
 */

#include <optional>
#include <string>
#include <vector>

#include "dist/inventory.h"
#include "dist/topology.h"

namespace moc {

/**
 * How optimizer states are partitioned at runtime (Section 4.4: the
 * sharding strategies generalize to scenarios without ZeRO).
 */
enum class ZeroStage {
    /** No ZeRO: optimizer states replicated; checkpoint places them exactly
        like the corresponding weights (subject to EE/EN/AN). */
    kNone,
    /** ZeRO-1/2 (the paper's focus): optimizer states already partitioned —
        non-expert across all DP ranks, each expert across its replicas. */
    kZero2,
    /** ZeRO-3 / FSDP: weights are partitioned the same way too. */
    kZero3,
};

/** Which fully-sharded optimizations are active. */
struct ShardingOptions {
    bool equal_expert = false;       ///< "EE"
    bool equal_nonexpert = false;    ///< "EN"
    bool adaptive_nonexpert = false; ///< "AN" (overrides "EN" for non-expert)
    ZeroStage zero = ZeroStage::kZero2;
};

/** One unit (or fragment) of checkpoint work assigned to a rank. */
struct ShardItem {
    /** Module key; fragments carry a "#g<group>" suffix. */
    std::string key;
    Bytes bytes = 0;
    /** True for optimizer-state payload, false for weights. */
    bool optimizer = false;
};

/** The rank -> work mapping of one checkpoint event. */
class ShardPlan {
  public:
    explicit ShardPlan(std::size_t num_ranks);

    void Add(RankId rank, ShardItem item);

    std::size_t num_ranks() const { return per_rank_.size(); }
    const std::vector<ShardItem>& Items(RankId rank) const;

    /** Total bytes assigned to @p rank. */
    Bytes RankBytes(RankId rank) const;

    /** All per-rank byte loads. */
    std::vector<Bytes> RankLoads() const;

    /** The heaviest rank's load — what determines blocking duration. */
    Bytes BottleneckBytes() const;

    /** Sum across ranks (the total checkpoint size of the event). */
    Bytes TotalBytes() const;

    /** Rank that holds an item with exactly @p key (weights), if any. */
    std::optional<RankId> FindWeightOwner(const std::string& key) const;

  private:
    std::vector<std::vector<ShardItem>> per_rank_;
    std::vector<Bytes> loads_;
};

/**
 * Plans checkpoint shards for a model/topology under a sharding strategy.
 */
class ShardingPlanner {
  public:
    ShardingPlanner(const ModelStateInventory& inventory, const RankTopology& topology,
                    const ShardingOptions& options);

    /**
     * Plans one checkpoint event.
     * @param experts_weights per-MoE-layer experts whose weights are saved.
     * @param experts_optim per-MoE-layer experts whose optimizer is saved.
     */
    ShardPlan Plan(const std::vector<std::vector<ExpertId>>& experts_weights,
                   const std::vector<std::vector<ExpertId>>& experts_optim) const;

    /** Plans a full (non-PEC) checkpoint event. */
    ShardPlan PlanFull() const;

    /** The all-experts selection for this model. */
    std::vector<std::vector<ExpertId>> FullSelection() const;

    const ShardingOptions& options() const { return options_; }

  private:
    const ModelStateInventory& inventory_;
    const RankTopology& topology_;
    ShardingOptions options_;
};

}  // namespace moc

#endif  // MOC_CORE_SHARDING_H_
