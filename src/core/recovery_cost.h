#ifndef MOC_CORE_RECOVERY_COST_H_
#define MOC_CORE_RECOVERY_COST_H_

/**
 * @file
 * Recovery-time estimation: turns a RecoveryPlan into an O_restart estimate
 * (Section 2.3's restart overhead) under a hierarchical-read cost model.
 * Two-level recovery pays memory-read prices for surviving-node units and
 * storage-read prices for the rest, quantifying the paper's claim that
 * in-memory recovery "reduces the overhead of loading data from persistent
 * storage".
 */

#include "core/two_level.h"
#include "util/clock.h"

namespace moc {

/** Read-path bandwidths for recovery. */
struct RecoveryCostModel {
    /** CPU-memory read bandwidth per node, bytes/s. */
    double memory_read_bandwidth = 10.0e9;
    /** Persistent-storage read bandwidth per rank, bytes/s. */
    double storage_read_bandwidth = 1.0e9;
    /** Fixed process-restart cost (scheduler, init, NCCL setup), seconds. */
    Seconds fixed_restart = 60.0;
    /** Per-key metadata/open latency, seconds. */
    Seconds per_key_latency = 1e-3;
};

/** Breakdown of an estimated recovery. */
struct RecoveryCostEstimate {
    Seconds fixed = 0.0;
    Seconds memory_read = 0.0;
    Seconds storage_read = 0.0;
    Seconds total = 0.0;
};

/** Estimates the wall-clock restart cost of executing @p plan. */
RecoveryCostEstimate EstimateRecoveryCost(const RecoveryPlan& plan,
                                          const RecoveryCostModel& model);

}  // namespace moc

#endif  // MOC_CORE_RECOVERY_COST_H_
