#ifndef MOC_CORE_PLACEMENT_H_
#define MOC_CORE_PLACEMENT_H_

/**
 * @file
 * The load-aware expert placement solver of the elastic membership
 * subsystem (Lazarus, arXiv:2407.04656): given the live rank set, the
 * previous expert->replica assignment, and per-expert token load, emit a
 * versioned PlacementPlan that
 *
 *  - keeps at least R replicas of every expert (clamped to the live rank
 *    count) so a further rank death cannot erase an expert's only copy;
 *  - minimizes moved bytes by keeping every replica that survived the
 *    membership change where it already is;
 *  - balances hot-expert load: a replica contributes its expert's load
 *    divided by the expert's replica count (routing spreads across
 *    replicas), and new replicas land on the least-loaded ranks, followed
 *    by a bounded local-search rebalance pass.
 *
 * The coordinator solves a new plan whenever it admits or evicts a rank
 * (examples/cluster_procs --elastic) and broadcasts it with kCkptBegin /
 * kJoinAccept (ckpt/membership.h); recovery applies the inverse mapping as
 * a RankRemap so a generation sealed by N ranks restores onto the current
 * M != N members (core/cluster_recovery.h).
 *
 * The solver is pure and deterministic — no transport, no clocks — so the
 * sim/bench side can sweep policies at 10k-rank scale (bench_placement).
 */

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace moc {

/** One expert the solver must place. */
struct ExpertSpec {
    /** Globally unique expert id. */
    std::size_t id = 0;
    /** Bytes one replica occupies (what a move costs). */
    Bytes bytes = 0;
    /** Routed-token load (ExpertStatsRegistry token counts, or synthetic). */
    double load = 1.0;
};

/** How the solver trades movement against balance (bench_placement sweeps). */
enum class PlacementPolicy {
    /** Keep survivors, fill replicas on least-loaded ranks, then rebalance. */
    kLoadAware,
    /** Keep survivors, fill on least-loaded ranks, no rebalance pass. */
    kMinMove,
    /** Deterministic round-robin from scratch; ignores the previous plan. */
    kRoundRobin,
};

const char* PlacementPolicyName(PlacementPolicy policy);

/** One placement problem instance. */
struct PlacementProblem {
    std::vector<ExpertSpec> experts;
    /** Ranks currently live (sorted or not; the solver sorts a copy). */
    std::vector<std::size_t> live_ranks;
    /** Target replicas per expert; clamped to live_ranks.size(). */
    std::size_t replicas = 1;
    /** Previous assignment (expert id -> hosting ranks); empty = cold start. */
    std::map<std::size_t, std::vector<std::size_t>> current;
    PlacementPolicy policy = PlacementPolicy::kLoadAware;
    /** Cap on local-search rebalance moves (0 = solver default). */
    std::size_t rebalance_cap = 0;
};

/** The solver's verdict: a versioned expert->replica assignment. */
struct PlacementPlan {
    /** Monotonic plan version; the caller stamps it (membership version). */
    std::uint64_t version = 0;
    /** expert id -> hosting ranks, primary first, each rank at most once. */
    std::map<std::size_t, std::vector<std::size_t>> assignments;
    /** Bytes that must be copied to ranks that did not host the expert
        before (0 on a cold start: everything loads from the store anyway). */
    Bytes moved_bytes = 0;
    std::size_t moved_replicas = 0;
    /** Final per-rank load under the load-splitting model. */
    std::map<std::size_t, double> rank_load;

    /** Ranks hosting @p expert (empty when unknown). */
    const std::vector<std::size_t>* Hosts(std::size_t expert) const;
};

/** Solves @p problem. @throws std::invalid_argument on an empty rank set. */
PlacementPlan SolvePlacement(const PlacementProblem& problem);

/** The invariants a correct plan must satisfy (tests and the soak). */
struct PlacementCheck {
    bool ok = true;
    /** First violated invariant, empty when ok. */
    std::string error;
    double max_load = 0.0;
    double min_load = 0.0;
    double mean_load = 0.0;
    /** Largest single-replica load contribution (the balance slack term). */
    double max_contribution = 0.0;
};

/**
 * Checks @p plan against @p problem: every expert keeps
 * min(replicas, live) distinct replicas, all on live ranks, and the final
 * load obeys the greedy bound max <= mean + max_contribution (+eps).
 */
PlacementCheck VerifyPlacement(const PlacementProblem& problem,
                               const PlacementPlan& plan);

/**
 * Rewrites logical shard keys of a dead world onto the current membership:
 * exact-key overrides first (expert shards that moved to a specific new
 * owner), then "rank<r>/..." prefix rewrites for whole dead ranks. Keys
 * matching neither pass through unchanged.
 */
struct RankRemap {
    /** Old rank -> rank that absorbs its keys. */
    std::map<std::size_t, std::size_t> ranks;
    /** Exact logical-key overrides (take precedence over rank rewrites). */
    std::map<std::string, std::string> keys;

    bool empty() const { return ranks.empty() && keys.empty(); }
    std::string Apply(const std::string& key) const;
};

/**
 * Ranks-only remap: every old rank in [0, old_world_size) absent from
 * @p survivors maps onto a survivor (round-robin over the sorted survivor
 * list, by old rank id — deterministic). Survivors map to themselves
 * implicitly (no entry).
 */
RankRemap BuildRankRemap(std::size_t old_world_size,
                         const std::vector<std::size_t>& survivors);

/**
 * Adds exact-key overrides for every expert whose primary owner changed
 * between @p before and @p after; @p key_of names the shard key an expert's
 * state lives under on a given rank (e.g. "rank2/expert/7/w").
 */
void AddExpertMoves(
    RankRemap& remap,
    const std::map<std::size_t, std::vector<std::size_t>>& before,
    const std::map<std::size_t, std::vector<std::size_t>>& after,
    const std::function<std::string(std::size_t rank, std::size_t expert)>&
        key_of);

}  // namespace moc

#endif  // MOC_CORE_PLACEMENT_H_
