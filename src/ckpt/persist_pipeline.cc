#include "ckpt/persist_pipeline.h"

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/delta_codec.h"
#include "storage/store_error.h"
#include "util/crc32.h"
#include "util/hash.h"
#include "util/logging.h"

namespace moc {

void
ShardBatch::Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t
ShardBatch::written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return written_;
}

std::size_t
ShardBatch::deduped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return deduped_;
}

std::size_t
ShardBatch::failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_;
}

Bytes
ShardBatch::bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
}

PersistPipeline::PersistPipeline(ObjectStore& store, CheckpointManifest& manifest,
                                 WriteCostFn write_cost,
                                 const PersistPipelineOptions& options)
    : store_(store),
      manifest_(manifest),
      write_cost_(std::move(write_cost)),
      options_(options) {
    MOC_CHECK_ARG(options.workers >= 1, "pipeline needs at least one worker");
    MOC_CHECK_ARG(options.queue_capacity >= 1, "queue capacity must be >= 1");
    MOC_CHECK_ARG(options.time_scale >= 0.0, "time_scale must be >= 0");
    workers_.reserve(options.workers);
    for (std::size_t i = 0; i < options.workers; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

PersistPipeline::~PersistPipeline() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    queue_cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void
PersistPipeline::BeginGeneration(std::size_t iteration) {
    std::lock_guard<std::mutex> lock(mu_);
    MOC_CHECK_ARG(!open_generation_.has_value(),
                  "generation " << *open_generation_
                                << " still open; finish it first");
    open_generation_ = iteration;
    gen_stats_ = GenerationCommitStats{};
    gen_stats_.iteration = iteration;
    staged_records_.clear();
}

std::shared_ptr<ShardBatch>
PersistPipeline::MakeBatch() {
    return std::make_shared<ShardBatch>();
}

void
PersistPipeline::Submit(std::string key, Blob blob, std::size_t iteration,
                        std::shared_ptr<ShardBatch> batch,
                        const obs::TraceContext& ctx) {
    if (batch) {
        std::lock_guard<std::mutex> lock(batch->mu_);
        ++batch->pending_;
    }
    std::unique_lock<std::mutex> lock(mu_);
    MOC_CHECK_ARG(open_generation_.has_value() && *open_generation_ == iteration,
                  "submit for iteration " << iteration
                                          << " outside its open generation");
    queue_cv_.wait(lock, [this] {
        return queue_.size() < options_.queue_capacity || stop_;
    });
    MOC_CHECK_ARG(!stop_, "pipeline is shutting down");
    ++gen_stats_.shards;
    queue_.push_back(Job{std::move(key), std::move(blob), iteration,
                         std::move(batch), ctx});
    queue_cv_.notify_all();
}

GenerationCommitStats
PersistPipeline::FinishGeneration() {
    std::unique_lock<std::mutex> lock(mu_);
    MOC_CHECK_ARG(open_generation_.has_value(), "no generation open");
    const std::size_t iteration = *open_generation_;
    // The seal barrier: its span starts when the last submitter calls in
    // and ends once the slowest shard drained — on the flight recorder it
    // is the join node every rank's persist lane feeds into.
    obs::TraceContext ctx;
    ctx.generation = iteration;
    ctx.iteration = iteration;
    ctx.phase = "seal";
    const obs::TraceContextScope ctx_scope(ctx);
    const obs::TraceSpan span("cluster.seal", "cluster");
    {
        const obs::WatchdogOp guard(options_.watchdog, "seal",
                                    options_.seal_budget_s, ctx,
                                    "gen=" + std::to_string(iteration));
        drain_cv_.wait(lock,
                       [this] { return queue_.empty() && in_flight_ == 0; });
    }

    gen_stats_.sealed =
        gen_stats_.failures == 0 &&
        gen_stats_.shards_written + gen_stats_.shards_deduped == gen_stats_.shards;
    const GenerationCommitStats stats = gen_stats_;
    if (stats.sealed) {
        for (auto& [key, entry] : staged_records_) {
            sealed_baseline_[key] = entry;
        }
    }
    staged_records_.clear();
    open_generation_.reset();
    lock.unlock();

    static obs::Counter& sealed_ctr =
        obs::MetricsRegistry::Instance().GetCounter("cluster.generations_sealed");
    static obs::Counter& unsealed_ctr =
        obs::MetricsRegistry::Instance().GetCounter(
            "cluster.generations_unsealed");
    obs::JournalEvent event;
    event.kind = obs::EventKind::kClusterSeal;
    event.iteration = iteration;
    event.bytes = stats.bytes_written;
    if (stats.sealed) {
        // Seal AFTER every shard verified: recovery never sees a generation
        // that is complete in the manifest but torn in the store.
        manifest_.MarkCheckpointComplete(StoreLevel::kPersist, iteration);
        sealed_ctr.Add();
        obs::MetricsRegistry::Instance()
            .GetGauge("cluster.last_sealed_generation")
            .Set(static_cast<double>(iteration));
        event.detail = "sealed shards=" + std::to_string(stats.shards) +
                       " written=" + std::to_string(stats.shards_written) +
                       " deduped=" + std::to_string(stats.shards_deduped) +
                       " delta=" + std::to_string(stats.shards_delta);
    } else {
        unsealed_ctr.Add();
        event.detail = "unsealed failures=" + std::to_string(stats.failures) +
                       " shards=" + std::to_string(stats.shards);
        MOC_WARN << "cluster: generation " << iteration << " left unsealed ("
                 << stats.failures << " of " << stats.shards
                 << " shards failed); recovery falls back to the previous "
                    "sealed generation";
    }
    obs::EventJournal::Instance().Append(std::move(event));
    return stats;
}

void
PersistPipeline::WorkerLoop() {
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            queue_cv_.wait(lock, [this] { return !queue_.empty() || stop_; });
            if (queue_.empty()) {
                return;  // stop_ and nothing left to drain
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
            queue_cv_.notify_all();  // space freed for blocked submitters
        }
        Execute(std::move(job));
    }
}

void
PersistPipeline::Execute(Job job) {
    obs::TraceContext ctx = job.ctx;
    ctx.phase = "persist";
    const obs::TraceContextScope ctx_scope(ctx);
    const Seconds start = clock_.Now();
    const std::uint32_t crc = Crc32c(job.blob.data(), job.blob.size());
    const std::uint64_t fnv = Fnv1a64(job.blob.data(), job.blob.size());
    const Bytes size = job.blob.size();

    std::optional<SealedEntry> baseline;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = sealed_baseline_.find(job.key);
        if (it != sealed_baseline_.end()) {
            baseline = it->second;
        }
    }

    // Dedup: identical content to the last sealed generation's entry is
    // recorded by reference, not re-persisted. Identity is the triple
    // (size, CRC-32C, FNV-1a 64): a 32-bit hash alone collides under
    // realistic shard counts, and a false dedup silently restores the
    // wrong expert weights.
    if (options_.dedup && baseline && baseline->crc == crc &&
        baseline->fnv == fnv && baseline->bytes == size) {
        const SealedEntry entry = *baseline;  // keeps chain + chunk ids
        {
            std::lock_guard<std::mutex> lock(mu_);
            staged_records_.emplace_back(job.key, entry);
        }
        manifest_.RecordPersistVersion(job.key, job.iteration, size, crc,
                                       /*verified=*/true,
                                       entry.physical_iteration);
        static obs::Counter& dedup_ctr =
            obs::MetricsRegistry::Instance().GetCounter(
                "cluster.shards_deduped");
        static obs::Counter& dedup_bytes =
            obs::MetricsRegistry::Instance().GetCounter(
                "cluster.bytes_deduped");
        dedup_ctr.Add();
        dedup_bytes.Add(size);
        CompleteJob(job, /*written=*/false, /*deduped=*/true,
                    /*failed=*/false, /*bytes=*/0);
        return;
    }

    // Delta: a changed shard whose size matches the baseline diffs against
    // it chunk-by-chunk; when only part of the grid changed and the chain
    // is still under its bound, persist the changed chunks instead of the
    // whole blob. Everything else falls through to a full write.
    std::shared_ptr<const std::vector<ChunkId>> chunks;
    std::vector<std::uint32_t> changed;
    bool as_delta = false;
    if (options_.delta) {
        chunks = std::make_shared<const std::vector<ChunkId>>(
            HashChunks(job.blob, options_.delta_chunk_bytes));
        if (baseline && baseline->bytes == size && baseline->chunks &&
            baseline->chunks->size() == chunks->size()) {
            for (std::size_t i = 0; i < chunks->size(); ++i) {
                if ((*chunks)[i] != (*baseline->chunks)[i]) {
                    changed.push_back(static_cast<std::uint32_t>(i));
                }
            }
            if (!changed.empty() && changed.size() < chunks->size()) {
                if (baseline->chain_length < options_.max_delta_chain) {
                    as_delta = true;
                } else {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++gen_stats_.forced_full;
                    static obs::Counter& forced_ctr =
                        obs::MetricsRegistry::Instance().GetCounter(
                            "cluster.delta.forced_full");
                    forced_ctr.Add();
                }
            }
        }
    }

    // The base iteration always holds a physically resolvable version of
    // this key (a full blob, or a shorter delta chain), so restore and
    // fsck can walk the chain without chasing dedup refs first.
    const std::size_t delta_base = baseline ? baseline->physical_iteration : 0;
    Blob payload;
    if (as_delta) {
        payload = EncodeDelta(job.blob, changed, options_.delta_chunk_bytes,
                              delta_base);
    }
    const Blob& wire = as_delta ? payload : job.blob;
    const Bytes wire_size = wire.size();
    const std::uint32_t wire_crc =
        as_delta ? Crc32c(wire.data(), wire.size()) : crc;
    const std::string physical =
        as_delta ? DeltaShardKey(job.key, job.iteration)
                 : VersionedShardKey(job.key, job.iteration);

    bool written = false;
    bool verified = !options_.verify;  // unverified mode trusts the write
    // The watchdog covers the whole write+verify: a latency spike inside
    // Put (FaultyStore) or a hung filesystem fires a `stall` event while
    // this op is still blocked.
    const obs::WatchdogOp stall_guard(options_.watchdog, "persist",
                                      options_.shard_budget_s, ctx,
                                      "key=" + job.key);
    try {
        {
            const obs::TraceSpan write_span("cluster.persist_shard",
                                            "cluster");
            if (write_cost_) {
                clock_.Advance(write_cost_(wire_size) * options_.time_scale);
            }
            store_.Put(physical, wire);
            written = true;
        }
        if (options_.verify) {
            obs::TraceContext verify_ctx = job.ctx;
            verify_ctx.phase = "verify";
            const obs::TraceContextScope verify_scope(verify_ctx);
            const obs::TraceSpan verify_span("cluster.verify_shard",
                                             "cluster");
            const auto readback = store_.Get(physical);
            verified = readback.has_value() && readback->size() == wire_size &&
                       Crc32c(readback->data(), readback->size()) == wire_crc;
        }
    } catch (const StoreError& e) {
        obs::JournalEvent fault;
        fault.kind = obs::EventKind::kStorageFault;
        fault.iteration = job.iteration;
        fault.bytes = wire_size;
        fault.detail = "cluster shard " + job.key + " " +
                       (written ? "verify read" : "write") + " failed (" +
                       StoreErrorKindName(e.kind()) + ")";
        obs::EventJournal::Instance().Append(std::move(fault));
    }

    const bool ok = written && verified;
    if (written) {
        // A landed-but-unverified write is still recorded (fsck and the
        // fallback chains must know the version exists), but it can never
        // seal its generation.
        if (as_delta) {
            manifest_.RecordPersistDelta(job.key, job.iteration, size, crc,
                                         verified, delta_base, wire_size,
                                         wire_crc);
        } else {
            manifest_.RecordPersistVersion(job.key, job.iteration, size, crc,
                                           verified);
        }
    }
    if (ok) {
        SealedEntry entry;
        entry.crc = crc;
        entry.fnv = fnv;
        entry.bytes = size;
        entry.physical_iteration = job.iteration;
        entry.chain_length = as_delta ? baseline->chain_length + 1 : 0;
        entry.chunks = chunks;
        std::lock_guard<std::mutex> lock(mu_);
        staged_records_.emplace_back(job.key, std::move(entry));
        if (as_delta) {
            ++gen_stats_.shards_delta;
            gen_stats_.bytes_delta_saved += size - wire_size;
        }
    }

    static obs::Counter& written_ctr =
        obs::MetricsRegistry::Instance().GetCounter("cluster.shards_written");
    static obs::Counter& written_bytes =
        obs::MetricsRegistry::Instance().GetCounter("cluster.bytes_written");
    static obs::Counter& failures_ctr =
        obs::MetricsRegistry::Instance().GetCounter("cluster.persist_failures");
    static obs::Histogram& latency =
        obs::MetricsRegistry::Instance().GetHistogram(
            "cluster.shard_persist_seconds");
    latency.Observe(clock_.Now() - start);
    if (ok) {
        written_ctr.Add();
        written_bytes.Add(wire_size);
        if (as_delta) {
            static obs::Counter& delta_ctr =
                obs::MetricsRegistry::Instance().GetCounter(
                    "cluster.delta.shards");
            static obs::Counter& delta_bytes =
                obs::MetricsRegistry::Instance().GetCounter(
                    "cluster.delta.bytes_written");
            static obs::Counter& delta_saved =
                obs::MetricsRegistry::Instance().GetCounter(
                    "cluster.delta.bytes_saved");
            delta_ctr.Add();
            delta_bytes.Add(wire_size);
            delta_saved.Add(size - wire_size);
        }
    } else {
        failures_ctr.Add();
    }
    CompleteJob(job, ok, /*deduped=*/false, /*failed=*/!ok, ok ? wire_size : 0);
}

void
PersistPipeline::CompleteJob(const Job& job, bool written, bool deduped,
                             bool failed, Bytes bytes) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        gen_stats_.shards_written += written ? 1 : 0;
        gen_stats_.shards_deduped += deduped ? 1 : 0;
        gen_stats_.failures += failed ? 1 : 0;
        gen_stats_.bytes_written += bytes;
        gen_stats_.bytes_deduped += deduped ? job.blob.size() : 0;
        --in_flight_;
    }
    drain_cv_.notify_all();
    if (job.batch) {
        {
            std::lock_guard<std::mutex> lock(job.batch->mu_);
            job.batch->written_ += written ? 1 : 0;
            job.batch->deduped_ += deduped ? 1 : 0;
            job.batch->failed_ += failed ? 1 : 0;
            job.batch->bytes_written_ += bytes;
            --job.batch->pending_;
        }
        job.batch->cv_.notify_all();
    }
}

}  // namespace moc
