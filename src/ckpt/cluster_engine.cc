#include "ckpt/cluster_engine.h"

#include <thread>

#include "util/logging.h"

namespace moc {

BlobProvider
SyntheticBlobProvider() {
    return [](const ShardItem& item) {
        // Fabricate a payload of the planned size (scaled: 1 planned MiB ->
        // 1 synthetic KiB keeps memory small while preserving ratios).
        const std::size_t size =
            std::max<std::size_t>(1, static_cast<std::size_t>(item.bytes / 1024));
        return Blob(size, static_cast<std::uint8_t>(item.key.size() & 0xFF));
    };
}

ClusterCheckpointEngine::ClusterCheckpointEngine(PersistentStore& store,
                                                 std::size_t num_ranks,
                                                 const AgentCostModel& cost)
    : store_(store) {
    MOC_CHECK_ARG(num_ranks >= 1, "need at least one rank");
    agents_.reserve(num_ranks);
    for (std::size_t r = 0; r < num_ranks; ++r) {
        agents_.push_back(std::make_unique<AsyncCheckpointAgent>(
            store, "rank" + std::to_string(r), cost));
    }
}

ClusterRunStats
ClusterCheckpointEngine::Execute(const ShardPlan& plan, const BlobProvider& provider,
                                 std::size_t iteration) {
    MOC_CHECK_ARG(plan.num_ranks() == agents_.size(),
                  "plan rank count " << plan.num_ranks() << " != engine ranks "
                                     << agents_.size());
    ClusterRunStats stats;
    stats.per_rank_snapshot.assign(agents_.size(), 0.0);

    WallClock clock;
    const Seconds start = clock.Now();

    // Each rank serializes its items and hands one blob to its agent; the
    // snapshot phases run concurrently across ranks (they sleep, not spin).
    std::vector<std::thread> workers;
    workers.reserve(agents_.size());
    for (std::size_t r = 0; r < agents_.size(); ++r) {
        workers.emplace_back([this, &plan, &provider, &stats, iteration, r] {
            WallClock rank_clock;
            const Seconds rank_start = rank_clock.Now();
            Blob payload;
            for (const auto& item : plan.Items(r)) {
                const Blob piece = provider(item);
                payload.insert(payload.end(), piece.begin(), piece.end());
            }
            agents_[r]->RequestCheckpoint(std::move(payload), iteration);
            agents_[r]->WaitSnapshotComplete();
            stats.per_rank_snapshot[r] = rank_clock.Now() - rank_start;
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    stats.snapshot_makespan = clock.Now() - start;

    for (auto& agent : agents_) {
        agent->Drain();
    }
    stats.total_makespan = clock.Now() - start;
    for (const auto& agent : agents_) {
        const auto agent_stats = agent->stats();
        stats.keys_persisted += agent_stats.checkpoints_persisted;
        stats.bytes_persisted += agent_stats.bytes_persisted;
    }
    return stats;
}

}  // namespace moc
