#include "ckpt/cluster_engine.h"

#include <thread>

#include "obs/trace.h"
#include "storage/store_error.h"
#include "util/logging.h"
#include "util/rng.h"

namespace moc {

namespace {

/** FNV-1a 64-bit hash of @p key, the per-key PRNG seed. */
std::uint64_t
HashKey(const std::string& key) {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

}  // namespace

Blob
SyntheticShardBytes(const ShardItem& item, std::uint64_t salt) {
    // Fabricate a payload of the planned size (scaled: 1 planned MiB ->
    // 1 synthetic KiB keeps memory small while preserving ratios). Filled
    // from a per-(key, salt) seeded PRNG: a constant fill would let dedup
    // succeed across *different* keys and let bit-flip fault tests pass
    // vacuously on same-byte collisions.
    const std::size_t size =
        std::max<std::size_t>(1, static_cast<std::size_t>(item.bytes / 1024));
    Rng rng(HashKey(item.key) ^ salt);
    Blob blob(size);
    std::size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        std::uint64_t word = rng.Next();
        for (std::size_t b = 0; b < 8; ++b) {
            blob[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
        }
    }
    if (i < size) {
        std::uint64_t word = rng.Next();
        for (; i < size; ++i) {
            blob[i] = static_cast<std::uint8_t>(word);
            word >>= 8;
        }
    }
    return blob;
}

BlobProvider
SyntheticBlobProvider(std::uint64_t salt) {
    return [salt](const ShardItem& item) { return SyntheticShardBytes(item, salt); };
}

ClusterCheckpointEngine::ClusterCheckpointEngine(PersistentStore& store,
                                                 std::size_t num_ranks,
                                                 const AgentCostModel& cost,
                                                 const ClusterEngineOptions& options)
    : store_(store), options_(options) {
    Init(num_ranks, cost, [&store](Bytes bytes) { return store.WriteTime(bytes); });
    for (std::size_t r = 0; r < num_ranks; ++r) {
        agents_.push_back(std::make_unique<AsyncCheckpointAgent>(
            store, "rank" + std::to_string(r), cost));
        agents_.back()->AttachPipeline(pipeline_.get());
    }
}

ClusterCheckpointEngine::ClusterCheckpointEngine(ObjectStore& store,
                                                 std::size_t num_ranks,
                                                 const AgentCostModel& cost,
                                                 const ClusterEngineOptions& options)
    : store_(store), options_(options) {
    Init(num_ranks, cost, [bandwidth = cost.persist_bandwidth](Bytes bytes) {
        return static_cast<double>(bytes) / bandwidth;
    });
    for (std::size_t r = 0; r < num_ranks; ++r) {
        agents_.push_back(std::make_unique<AsyncCheckpointAgent>(
            store, "rank" + std::to_string(r), cost));
        agents_.back()->AttachPipeline(pipeline_.get());
    }
}

void
ClusterCheckpointEngine::Init(std::size_t num_ranks, const AgentCostModel& cost,
                              WriteCostFn write_cost) {
    MOC_CHECK_ARG(num_ranks >= 1, "need at least one rank");
    if (options_.manifest != nullptr) {
        manifest_ = options_.manifest;
    } else {
        owned_manifest_ = std::make_unique<CheckpointManifest>();
        manifest_ = owned_manifest_.get();
    }
    if (options_.per_shard) {
        PersistPipelineOptions pipe;
        pipe.workers = options_.persist_workers != 0 ? options_.persist_workers
                                                     : num_ranks;
        pipe.queue_capacity = options_.queue_capacity != 0
                                  ? options_.queue_capacity
                                  : 4 * pipe.workers;
        pipe.verify = options_.verify;
        pipe.dedup = options_.dedup;
        pipe.delta = options_.delta;
        pipe.delta_chunk_bytes = options_.delta_chunk_bytes;
        pipe.max_delta_chain = options_.max_delta_chain;
        pipe.time_scale = cost.time_scale;
        if (options_.shard_deadline_s > 0.0 || options_.seal_deadline_s > 0.0) {
            watchdog_ = std::make_unique<obs::StallWatchdog>();
            pipe.watchdog = watchdog_.get();
            pipe.shard_budget_s = options_.shard_deadline_s;
            pipe.seal_budget_s = options_.seal_deadline_s;
        }
        pipeline_ = std::make_unique<PersistPipeline>(store_, *manifest_,
                                                      std::move(write_cost), pipe);
    }
    // The begin/done barrier of every Execute runs over real Transport
    // endpoints (in-process mailboxes here; TCP in the multi-process
    // gauntlet), so the coordination protocol is exercised on every run.
    coord_transport_ =
        std::make_unique<net::InprocTransport>(hub_, net::kCoordinatorPeer);
    std::vector<net::PeerId> participants;
    rank_transports_.reserve(num_ranks);
    for (std::size_t r = 0; r < num_ranks; ++r) {
        rank_transports_.push_back(std::make_unique<net::InprocTransport>(
            hub_, static_cast<net::PeerId>(r)));
        participants.push_back(static_cast<net::PeerId>(r));
    }
    coordinator_ = std::make_unique<CheckpointCoordinator>(
        *coord_transport_, std::move(participants));
    agents_.reserve(num_ranks);
}

ClusterRunStats
ClusterCheckpointEngine::Execute(const ShardPlan& plan, const BlobProvider& provider,
                                 std::size_t iteration) {
    MOC_CHECK_ARG(plan.num_ranks() == agents_.size(),
                  "plan rank count " << plan.num_ranks() << " != engine ranks "
                                     << agents_.size());
    MOC_CHECK_ARG(!has_executed_ || iteration > last_iteration_,
                  "checkpoint iterations must be strictly increasing (got "
                      << iteration << " after " << last_iteration_ << ")");
    ClusterRunStats stats;
    stats.generation = iteration;
    stats.per_rank_snapshot.assign(agents_.size(), 0.0);
    stats.per_rank_serialize.assign(agents_.size(), 0.0);

    if (pipeline_) {
        pipeline_->BeginGeneration(iteration);
    }
    // Monolithic mode reports per-call deltas of the agents' lifetime
    // totals (a second Execute used to double-count the first).
    std::vector<AgentStats> before;
    if (!pipeline_) {
        before.reserve(agents_.size());
        for (const auto& agent : agents_) {
            before.push_back(agent->stats());
        }
    }

    WallClock clock;
    const Seconds start = clock.Now();

    // Announce the event over the transport: every rank's begin arrives as
    // a kCkptBegin message carrying the generation identity in its header,
    // and the coordinator collects each rank's kRankDone as the barrier.
    obs::TraceContext barrier_ctx;
    barrier_ctx.generation = iteration;
    barrier_ctx.iteration = iteration;
    barrier_ctx.phase = "barrier";
    coordinator_->BeginGeneration(iteration, barrier_ctx);

    // Each rank serializes its items and hands them to its agent; the
    // snapshot phases run concurrently across ranks (they sleep, not spin).
    std::vector<std::thread> workers;
    workers.reserve(agents_.size());
    for (std::size_t r = 0; r < agents_.size(); ++r) {
        workers.emplace_back([this, &plan, &provider, &stats, iteration, r] {
            WallClock rank_clock;
            RankParticipant participant(*rank_transports_[r]);
            const auto begin =
                participant.AwaitBegin(options_.barrier_deadline_s);
            if (!begin || begin->shutdown) {
                return;  // no begin arrived: the barrier reports us missing
            }
            // The flight-recorder identity of this rank's lane comes off
            // the wire (the kCkptBegin header), not local state: every span
            // and journal record downstream (snapshot thread, persist
            // workers, seal) is stamped with it.
            obs::TraceContext ctx;
            ctx.generation = begin->ctx.generation;
            ctx.iteration = begin->iteration;
            ctx.rank = static_cast<std::int32_t>(r);
            ctx.phase = "serialize";
            const obs::TraceContextScope ctx_scope(ctx);
            // CPU-side serialization is timed apart from the GPU->CPU
            // snapshot: folding it into the snapshot phase inflated the
            // Fig. 12 overlap numbers.
            const Seconds serialize_start = rank_clock.Now();
            if (pipeline_) {
                std::vector<NamedShard> shards;
                shards.reserve(plan.Items(r).size());
                {
                    const obs::TraceSpan span("cluster.serialize", "cluster");
                    for (const auto& item : plan.Items(r)) {
                        shards.push_back(NamedShard{item.key, provider(item)});
                    }
                }
                stats.per_rank_serialize[r] = rank_clock.Now() - serialize_start;
                const Seconds snapshot_start = rank_clock.Now();
                agents_[r]->RequestShardedCheckpoint(std::move(shards),
                                                     iteration, ctx);
                agents_[r]->WaitSnapshotComplete();
                stats.per_rank_snapshot[r] = rank_clock.Now() - snapshot_start;
            } else {
                Blob payload;
                {
                    const obs::TraceSpan span("cluster.serialize", "cluster");
                    for (const auto& item : plan.Items(r)) {
                        const Blob piece = provider(item);
                        payload.insert(payload.end(), piece.begin(),
                                       piece.end());
                    }
                }
                stats.per_rank_serialize[r] = rank_clock.Now() - serialize_start;
                const Seconds snapshot_start = rank_clock.Now();
                agents_[r]->RequestCheckpoint(std::move(payload), iteration,
                                              ctx);
                agents_[r]->WaitSnapshotComplete();
                stats.per_rank_snapshot[r] = rank_clock.Now() - snapshot_start;
            }
            // Snapshot landed: report done over the transport. Shard
            // integrity reports stay empty in-process — the pipeline
            // records them in the manifest directly; the multi-process
            // ranks (examples/cluster_procs) carry them in this message.
            participant.SendDone(begin->iteration, {}, /*ok=*/true, ctx);
        });
    }
    {
        const obs::TraceContextScope barrier_scope(barrier_ctx);
        const obs::TraceSpan span("net.barrier.wait", "net");
        const Seconds wait_start = clock.Now();
        const BarrierResult barrier = coordinator_->AwaitReports(
            iteration, options_.barrier_deadline_s);
        stats.barrier_wait = clock.Now() - wait_start;
        stats.barrier_complete = barrier.complete;
        if (!barrier.complete) {
            MOC_WARN << "cluster: transport barrier incomplete for iteration "
                     << iteration << " (" << barrier.reports.size() << "/"
                     << agents_.size() << " reported, " << barrier.dead.size()
                     << " dead" << (barrier.timed_out ? ", timed out" : "")
                     << ")";
        }
    }
    for (auto& w : workers) {
        w.join();
    }
    stats.snapshot_makespan = clock.Now() - start;

    for (auto& agent : agents_) {
        agent->Drain();
    }
    if (pipeline_) {
        const GenerationCommitStats gen = pipeline_->FinishGeneration();
        stats.keys_persisted = gen.shards_written;
        stats.bytes_persisted = gen.bytes_written;
        stats.keys_deduped = gen.shards_deduped;
        stats.bytes_deduped = gen.bytes_deduped;
        stats.keys_delta = gen.shards_delta;
        stats.bytes_delta_saved = gen.bytes_delta_saved;
        stats.forced_full = gen.forced_full;
        stats.persist_failures = gen.failures;
        stats.sealed = gen.sealed;
        if (!options_.manifest_key.empty()) {
            const std::string json = manifest_->ToJson();
            try {
                store_.Put(options_.manifest_key, Blob(json.begin(), json.end()));
            } catch (const StoreError& e) {
                MOC_WARN << "cluster: manifest write failed ("
                         << StoreErrorKindName(e.kind())
                         << "); offline audit will lag one generation";
            }
        }
    } else {
        for (std::size_t r = 0; r < agents_.size(); ++r) {
            const AgentStats after = agents_[r]->stats();
            stats.keys_persisted +=
                after.checkpoints_persisted - before[r].checkpoints_persisted;
            stats.bytes_persisted +=
                after.bytes_persisted - before[r].bytes_persisted;
            stats.persist_failures +=
                after.persist_failures - before[r].persist_failures;
        }
    }
    stats.total_makespan = clock.Now() - start;
    last_iteration_ = iteration;
    has_executed_ = true;
    return stats;
}

}  // namespace moc
