#ifndef MOC_CKPT_MEMBERSHIP_H_
#define MOC_CKPT_MEMBERSHIP_H_

/**
 * @file
 * Coordinator-side cluster membership: the state machine that decides which
 * ranks a checkpoint generation may be sealed against, and the join
 * handshake a respawned rank runs to get back in.
 *
 * Per-rank lifecycle:
 *
 *     joined --MarkLive--> live --MarkSuspect--> suspect
 *        |                  | ^______MarkLive______|  |
 *        |                  |                         |
 *        +---- OnPeerDeath(cause) ---> dead <---------+
 *                                       |
 *                    OnJoinRequest (fresh epoch, incarnation+1)
 *                                       v
 *                                   rejoined --MarkLive--> live
 *
 * Admission is epoch-gated: a kJoinRequest frame carries the rank's fresh
 * transport session epoch, and the table rejects any epoch not strictly
 * newer than the last one it admitted for that rank. A zombie — the old
 * incarnation of a respawned rank, or a partitioned process coming back
 * after its replacement — therefore can never re-enter, and (because the
 * transport's own EpochGate drops its frames) can never ack a stale
 * generation either. See docs/TRANSPORT.md for the wire handshake and
 * docs/FAULT_MODEL.md for the recovery matrix.
 *
 * Every transition journals exactly one `membership_change` event and bumps
 * the table version; checkpoint barriers seal against LiveRanks() at the
 * version current when the barrier opened, and the sealed-against set is
 * persisted next to the manifest ("meta/membership") so `moc_cli fsck` can
 * classify generations that reference ranks no longer in the membership.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/placement.h"
#include "net/frame.h"

namespace moc::ckpt {

/** Where a rank sits in the membership lifecycle. */
enum class MemberState : std::uint8_t {
    kJoined,   ///< admitted, not yet heard from in a barrier
    kLive,     ///< participating; seals count it
    kSuspect,  ///< missed a barrier deadline but transport still sees it
    kDead,     ///< transport declared it dead; evicted from barriers
    kRejoined, ///< re-admitted after death under a fresh epoch
};

/** Stable name of @p state ("joined", "live", ...). */
const char* MemberStateName(MemberState state);

/** One rank's membership record. */
struct MemberInfo {
    std::size_t rank = 0;
    MemberState state = MemberState::kJoined;
    /** Last transport session epoch admitted for this rank. */
    std::uint32_t epoch = 0;
    /** Times this rank has (re)joined; 1 for the initial admission. */
    std::uint32_t incarnation = 1;
    /** Why it died, when state is kDead ("eof", "heartbeat_timeout", ...). */
    std::string death_cause;
};

/** Wire payload of MsgType::kJoinRequest. */
struct JoinRequest {
    std::size_t rank = 0;
    /** The *rank's* view of its incarnation (0 on a fresh process). */
    std::uint32_t incarnation = 0;
};

Blob EncodeJoinRequest(const JoinRequest& request);
/** @throws std::runtime_error on a truncated payload. */
JoinRequest DecodeJoinRequest(const Blob& payload);

/** Wire payload of MsgType::kJoinAccept. */
struct JoinAccept {
    bool accepted = false;
    /** Why not, when rejected ("stale epoch", ...). */
    std::string reason;
    /** Membership version the admission landed at. */
    std::uint64_t membership_version = 0;
    /** The placement plan the rank must checkpoint under. */
    PlacementPlan placement;
};

Blob EncodeJoinAccept(const JoinAccept& accept);
/** @throws std::runtime_error on a truncated payload. */
JoinAccept DecodeJoinAccept(const Blob& payload);

/** Appends the expert->hosts table of @p plan to @p writer. */
void EncodePlacementAssignments(const PlacementPlan& plan,
                                net::PayloadWriter& writer);

/** Inverse of EncodePlacementAssignments (version + assignments only). */
PlacementPlan DecodePlacementAssignments(net::PayloadReader& reader);

/** A parse of the persisted membership document ("meta/membership"). */
struct MembershipSnapshot {
    std::uint64_t version = 0;
    std::vector<MemberInfo> members;

    /** Ranks in kJoined/kLive/kRejoined state. */
    std::vector<std::size_t> LiveRanks() const;
};

/** @throws std::invalid_argument on malformed or wrong-schema JSON. */
MembershipSnapshot ParseMembershipJson(const std::string& text);

/**
 * The coordinator's membership table. Thread-safe; every state transition
 * journals one `membership_change` event and bumps version().
 */
class MembershipTable {
  public:
    /** Admits @p rank at initial connect (state kJoined). */
    void AdmitInitial(std::size_t rank, std::uint32_t epoch);

    /** Marks @p rank live (it completed a barrier). No-op when dead. */
    void MarkLive(std::size_t rank);

    /** Marks @p rank suspect (missed a deadline, transport still alive). */
    void MarkSuspect(std::size_t rank);

    /** Transport declared @p rank dead: evict it. Idempotent per death. */
    void OnPeerDeath(std::size_t rank, const std::string& cause);

    /**
     * Handles a kJoinRequest from @p rank under transport session
     * @p epoch. Epochs not strictly newer than the last admitted one are
     * stale — the ask of a zombie — and rejected. A fresh epoch re-admits a
     * dead rank as kRejoined (incarnation + 1) and also (re)admits a rank
     * the table has never seen.
     *
     * @return the verdict to send back; the caller attaches the placement.
     */
    JoinAccept OnJoinRequest(std::size_t rank, std::uint32_t epoch,
                             std::uint32_t incarnation);

    /** Ranks a new checkpoint barrier should include. */
    std::vector<std::size_t> LiveRanks() const;

    /** The rank's record, or a default kDead record when unknown. */
    MemberInfo Info(std::size_t rank) const;

    /** Bumped on every state transition. */
    std::uint64_t version() const;

    std::size_t size() const;

    /** The table as a `moc-membership/1` JSON document. */
    std::string ToJson() const;

  private:
    /** Applies a state change + journals it. Caller holds mu_. */
    void Transition(MemberInfo& member, MemberState to,
                    const std::string& cause);

    mutable std::mutex mu_;
    std::map<std::size_t, MemberInfo> members_;
    std::uint64_t version_ = 0;
};

}  // namespace moc::ckpt

#endif  // MOC_CKPT_MEMBERSHIP_H_
