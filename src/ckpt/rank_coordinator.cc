#include "ckpt/rank_coordinator.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace moc {

namespace {

using net::MsgType;
using net::PeerId;

}  // namespace

Blob
EncodeRankDone(const RankDone& done) {
    net::PayloadWriter w;
    w.U64(done.iteration);
    w.U8(done.ok ? 1 : 0);
    w.U32(static_cast<std::uint32_t>(done.reports.size()));
    for (const auto& r : done.reports) {
        w.Str(r.key);
        w.U64(r.iteration);
        w.U64(r.bytes);
        w.U32(r.crc);
        w.U8(static_cast<std::uint8_t>((r.verified ? 1 : 0) |
                                       (r.deduped ? 2 : 0) |
                                       (r.failed ? 4 : 0)));
        w.U64(r.ref_iteration);
    }
    return w.Take();
}

RankDone
DecodeRankDone(PeerId from, const Blob& payload) {
    net::PayloadReader reader(payload);
    RankDone done;
    done.rank = from;
    done.iteration = reader.U64();
    done.ok = reader.U8() != 0;
    const std::uint32_t count = reader.U32();
    done.reports.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        ShardReport r;
        r.key = reader.Str();
        r.iteration = static_cast<std::size_t>(reader.U64());
        r.bytes = reader.U64();
        r.crc = reader.U32();
        const std::uint8_t flags = reader.U8();
        r.verified = (flags & 1) != 0;
        r.deduped = (flags & 2) != 0;
        r.failed = (flags & 4) != 0;
        r.ref_iteration = static_cast<std::size_t>(reader.U64());
        done.reports.push_back(std::move(r));
    }
    return done;
}

bool
BarrierResult::AllVerified() const {
    if (!complete) {
        return false;
    }
    for (const auto& done : reports) {
        if (!done.ok) {
            return false;
        }
        for (const auto& r : done.reports) {
            if (r.failed || !r.verified) {
                return false;
            }
        }
    }
    return true;
}

CheckpointCoordinator::CheckpointCoordinator(net::Transport& transport,
                                             std::vector<PeerId> participants)
    : transport_(transport), participants_(std::move(participants)) {}

std::size_t
CheckpointCoordinator::BeginGeneration(std::uint64_t iteration,
                                       const obs::TraceContext& ctx,
                                       const Blob* extra) {
    net::PayloadWriter w;
    w.U64(iteration);
    if (extra != nullptr && !extra->empty()) {
        w.Raw(extra->data(), extra->size());
    }
    const Blob payload = w.Take();
    std::size_t reached = 0;
    for (const PeerId rank : participants_) {
        if (transport_.Send(rank, MsgType::kCkptBegin, payload, ctx)) {
            ++reached;
        }
    }
    return reached;
}

BarrierResult
CheckpointCoordinator::AwaitReports(std::uint64_t iteration,
                                    Seconds deadline_s) {
    static obs::Counter& barriers =
        obs::MetricsRegistry::Instance().GetCounter("net.barrier.waits");
    static obs::Counter& barrier_timeouts =
        obs::MetricsRegistry::Instance().GetCounter("net.barrier.timeouts");
    barriers.Add();

    BarrierResult result;
    std::set<PeerId> pending(participants_.begin(), participants_.end());
    const WallClock clock;
    const Seconds deadline = clock.Now() + deadline_s;
    while (!pending.empty()) {
        const Seconds remain = deadline - clock.Now();
        if (remain <= 0.0) {
            result.timed_out = true;
            barrier_timeouts.Add();
            break;
        }
        auto msg = transport_.Recv(remain);
        if (!msg) {
            continue;  // deadline check decides
        }
        if (observer_) {
            observer_(*msg);
        }
        if (msg->type == MsgType::kRankDone && pending.count(msg->from)) {
            RankDone done;
            try {
                done = DecodeRankDone(msg->from, msg->payload);
            } catch (const std::runtime_error&) {
                continue;  // truncated payload: drop, the rank may resend
            }
            if (done.iteration != iteration) {
                continue;  // stale report from an earlier event
            }
            pending.erase(msg->from);
            result.reports.push_back(std::move(done));
        } else if (msg->type == MsgType::kPeerDeath &&
                   pending.count(msg->from)) {
            pending.erase(msg->from);
            result.dead.push_back(msg->from);
        } else if (msg->type == MsgType::kJoinRequest) {
            // Never admitted mid-generation: surfaced to the control loop,
            // which runs the membership handshake after the seal decision.
            result.joins.push_back(std::move(*msg));
        }
        // Everything else (a duplicate report, a non-participant frame) is
        // dropped: the coordinator control loop owns this queue.
    }
    // Drop dead ranks from future barriers: their epochs are gone and a
    // rejoin would need a fresh generation anyway.
    for (const PeerId dead : result.dead) {
        participants_.erase(
            std::remove(participants_.begin(), participants_.end(), dead),
            participants_.end());
    }
    result.complete =
        result.dead.empty() && result.reports.size() == participants_.size();
    return result;
}

std::size_t
CheckpointCoordinator::Shutdown() {
    std::size_t reached = 0;
    for (const PeerId rank : participants_) {
        if (transport_.Send(rank, MsgType::kShutdown, {})) {
            ++reached;
        }
        // No kGoodbye from this side: the *closing* side announces its own
        // goodbye (the rank, on its way out). A goodbye from here would
        // race the rank's and could retire the connection before the
        // rank's farewell got through, turning a clean exit into a
        // spurious eof death.
    }
    return reached;
}

RankParticipant::RankParticipant(net::Transport& transport,
                                 PeerId coordinator)
    : transport_(transport), coordinator_(coordinator) {}

std::optional<BeginEvent>
RankParticipant::AwaitBegin(Seconds timeout_s) {
    const WallClock clock;
    const Seconds deadline = clock.Now() + timeout_s;
    while (true) {
        const Seconds remain = deadline - clock.Now();
        if (remain <= 0.0) {
            return std::nullopt;
        }
        auto msg = transport_.Recv(remain);
        if (!msg) {
            continue;
        }
        if (msg->type == MsgType::kCkptBegin) {
            BeginEvent event;
            try {
                net::PayloadReader reader(msg->payload);
                event.iteration = reader.U64();
                if (reader.remaining() > 0) {
                    event.extra.assign(msg->payload.end() -
                                           static_cast<std::ptrdiff_t>(
                                               reader.remaining()),
                                       msg->payload.end());
                }
            } catch (const std::runtime_error&) {
                continue;
            }
            event.ctx = msg->ctx;
            return event;
        }
        if (msg->type == MsgType::kShutdown ||
            (msg->type == MsgType::kPeerDeath && msg->from == coordinator_)) {
            BeginEvent event;
            event.shutdown = true;
            return event;
        }
    }
}

bool
RankParticipant::SendDone(std::uint64_t iteration,
                          std::vector<ShardReport> reports, bool ok,
                          const obs::TraceContext& ctx) {
    RankDone done;
    done.rank = transport_.self();
    done.iteration = iteration;
    done.ok = ok;
    done.reports = std::move(reports);
    return transport_.Send(coordinator_, MsgType::kRankDone,
                           EncodeRankDone(done), ctx);
}

void
RecordReports(CheckpointManifest& manifest, const BarrierResult& result) {
    for (const auto& done : result.reports) {
        for (const auto& r : done.reports) {
            if (r.failed) {
                continue;  // nothing landed; the gap keeps the gen unsealed
            }
            manifest.RecordPersistVersion(
                r.key, r.iteration, r.bytes, r.crc, r.verified,
                r.deduped ? std::optional<std::size_t>(r.ref_iteration)
                          : std::nullopt);
        }
    }
}

bool
SealIfComplete(CheckpointManifest& manifest, std::uint64_t iteration,
               const BarrierResult& result) {
    std::size_t shards = 0;
    Bytes bytes = 0;
    for (const auto& done : result.reports) {
        shards += done.reports.size();
        for (const auto& r : done.reports) {
            if (!r.deduped && !r.failed) {
                bytes += r.bytes;
            }
        }
    }
    const bool sealed = result.AllVerified();
    if (sealed) {
        manifest.MarkCheckpointComplete(StoreLevel::kPersist,
                                        static_cast<std::size_t>(iteration));
    }
    obs::JournalEvent event;
    event.kind = obs::EventKind::kClusterSeal;
    event.iteration = iteration;
    event.gen = iteration;
    event.bytes = bytes;
    std::ostringstream detail;
    detail << (sealed ? "sealed" : "unsealed") << " shards=" << shards
           << " ranks=" << result.reports.size();
    if (!result.dead.empty()) {
        detail << " dead=" << result.dead.size();
    }
    if (result.timed_out) {
        detail << " timeout";
    }
    event.detail = detail.str();
    obs::EventJournal::Instance().Append(std::move(event));
    return sealed;
}

}  // namespace moc
