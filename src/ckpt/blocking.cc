#include "ckpt/blocking.h"

#include "util/logging.h"

namespace moc {

BlockingCheckpointer::BlockingCheckpointer(PersistentStore& store,
                                           std::string key_prefix,
                                           double snapshot_bandwidth,
                                           double persist_bandwidth,
                                           double time_scale)
    : BlockingCheckpointer(static_cast<ObjectStore&>(store),
                           std::move(key_prefix), snapshot_bandwidth,
                           persist_bandwidth, time_scale) {}

BlockingCheckpointer::BlockingCheckpointer(ObjectStore& store,
                                           std::string key_prefix,
                                           double snapshot_bandwidth,
                                           double persist_bandwidth,
                                           double time_scale)
    : store_(store),
      key_prefix_(std::move(key_prefix)),
      snapshot_bandwidth_(snapshot_bandwidth),
      persist_bandwidth_(persist_bandwidth),
      time_scale_(time_scale) {
    MOC_CHECK_ARG(snapshot_bandwidth > 0.0 && persist_bandwidth > 0.0,
                  "bandwidths must be > 0");
}

Seconds
BlockingCheckpointer::Checkpoint(const Blob& state, std::size_t iteration) {
    const Seconds start = clock_.Now();
    const Seconds snapshot_time =
        static_cast<double>(state.size()) / snapshot_bandwidth_;
    clock_.Advance(snapshot_time * time_scale_);
    const Seconds persist_time =
        static_cast<double>(state.size()) / persist_bandwidth_;
    clock_.Advance(persist_time * time_scale_);
    store_.Put(key_prefix_ + "/ckpt", state);
    latest_persisted_ = iteration;
    return clock_.Now() - start;
}

}  // namespace moc
