#include "ckpt/async_agent.h"

#include "ckpt/persist_pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/store_error.h"
#include "util/logging.h"

namespace moc {

AsyncCheckpointAgent::AsyncCheckpointAgent(PersistentStore& store,
                                           std::string key_prefix,
                                           const AgentCostModel& cost)
    : store_(store),
      write_time_([&store](Bytes bytes) { return store.WriteTime(bytes); }),
      key_prefix_(std::move(key_prefix)),
      cost_(cost) {
    MOC_CHECK_ARG(cost.snapshot_bandwidth > 0.0 && cost.persist_bandwidth > 0.0,
                  "agent bandwidths must be > 0");
    MOC_CHECK_ARG(cost.time_scale >= 0.0, "time_scale must be >= 0");
    snapshot_thread_ = std::thread([this] { SnapshotLoop(); });
    persist_thread_ = std::thread([this] { PersistLoop(); });
}

AsyncCheckpointAgent::AsyncCheckpointAgent(ObjectStore& store,
                                           std::string key_prefix,
                                           const AgentCostModel& cost)
    : store_(store),
      write_time_([bandwidth = cost.persist_bandwidth](Bytes bytes) {
          return static_cast<double>(bytes) / bandwidth;
      }),
      key_prefix_(std::move(key_prefix)),
      cost_(cost) {
    MOC_CHECK_ARG(cost.snapshot_bandwidth > 0.0 && cost.persist_bandwidth > 0.0,
                  "agent bandwidths must be > 0");
    MOC_CHECK_ARG(cost.time_scale >= 0.0, "time_scale must be >= 0");
    snapshot_thread_ = std::thread([this] { SnapshotLoop(); });
    persist_thread_ = std::thread([this] { PersistLoop(); });
}

AsyncCheckpointAgent::~AsyncCheckpointAgent() {
    Drain();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    buffers_.Shutdown();
    snapshot_thread_.join();
    persist_thread_.join();
}

void
AsyncCheckpointAgent::RequestCheckpoint(Blob state, std::size_t iteration,
                                        const obs::TraceContext& ctx) {
    // Finish any previous snapshot first: a training process has a single
    // outstanding snapshot at a time.
    WaitSnapshotComplete();
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_pending_ = true;
    snapshot_in_flight_ = true;
    pending_blob_ = std::move(state);
    pending_shards_.clear();
    pending_iteration_ = iteration;
    pending_ctx_ = ctx;
    ++stats_.checkpoints_requested;
    cv_.notify_all();
}

void
AsyncCheckpointAgent::AttachPipeline(PersistPipeline* pipeline) {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_ = pipeline;
}

void
AsyncCheckpointAgent::RequestShardedCheckpoint(std::vector<NamedShard> shards,
                                               std::size_t iteration,
                                               const obs::TraceContext& ctx) {
    WaitSnapshotComplete();
    std::lock_guard<std::mutex> lock(mu_);
    MOC_CHECK_ARG(pipeline_ != nullptr,
                  "sharded checkpoints need an attached PersistPipeline");
    snapshot_pending_ = true;
    snapshot_in_flight_ = true;
    pending_blob_.clear();
    pending_shards_ = std::move(shards);
    pending_iteration_ = iteration;
    pending_ctx_ = ctx;
    ++stats_.checkpoints_requested;
    cv_.notify_all();
}

Seconds
AsyncCheckpointAgent::WaitSnapshotComplete() {
    const Seconds start = clock_.Now();
    std::unique_lock<std::mutex> lock(mu_);
    const bool waited = snapshot_pending_ || snapshot_in_flight_;
    cv_.wait(lock, [this] { return !snapshot_pending_ && !snapshot_in_flight_; });
    const Seconds stalled = clock_.Now() - start;
    if (waited && stalled > 0.0) {
        ++stats_.snapshot_stalls;
        stats_.total_stall_time += stalled;
        static obs::Counter& stalls =
            obs::MetricsRegistry::Instance().GetCounter("agent.stalls");
        static obs::Gauge& stall_seconds =
            obs::MetricsRegistry::Instance().GetGauge("agent.stall_seconds");
        stalls.Add();
        stall_seconds.Add(stalled);
    }
    return stalled;
}

void
AsyncCheckpointAgent::Drain() {
    WaitSnapshotComplete();
    buffers_.WaitPersistDrained();
}

std::optional<std::size_t>
AsyncCheckpointAgent::LatestPersistedIteration() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_persisted_;
}

AgentStats
AsyncCheckpointAgent::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
AsyncCheckpointAgent::SnapshotLoop() {
    for (;;) {
        Blob blob;
        std::vector<NamedShard> shards;
        std::size_t iteration = 0;
        obs::TraceContext ctx;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return snapshot_pending_ || stop_; });
            if (stop_ && !snapshot_pending_) {
                return;
            }
            snapshot_pending_ = false;
            blob = std::move(pending_blob_);
            shards = std::move(pending_shards_);
            pending_blob_.clear();
            pending_shards_.clear();
            iteration = pending_iteration_;
            ctx = pending_ctx_;
        }
        // GPU -> CPU copy into a snapshot buffer (costed by total bytes,
        // whether the payload is one blob or keyed shards).
        ctx.phase = "snapshot";
        const obs::TraceContextScope ctx_scope(ctx);
        const obs::TraceSpan span("agent.snapshot", "agent");
        const std::size_t idx = buffers_.AcquireForSnapshot();
        Bytes total = blob.size();
        for (const auto& shard : shards) {
            total += shard.data.size();
        }
        const Seconds copy_time =
            static_cast<double>(total) / cost_.snapshot_bandwidth;
        clock_.Advance(copy_time * cost_.time_scale);
        auto& slot = buffers_.Payload(idx);
        slot.data = std::move(blob);
        slot.shards = std::move(shards);
        slot.iteration = iteration;
        slot.ctx = ctx;
        buffers_.CompleteSnapshot(idx);
        static obs::Counter& snapshot_bytes =
            obs::MetricsRegistry::Instance().GetCounter("agent.snapshot_bytes");
        static obs::Histogram& snapshot_seconds =
            obs::MetricsRegistry::Instance().GetHistogram("agent.snapshot_seconds");
        snapshot_bytes.Add(total);
        snapshot_seconds.Observe(copy_time * cost_.time_scale);
        {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.bytes_snapshotted += total;
            snapshot_in_flight_ = false;
        }
        cv_.notify_all();
    }
}

void
AsyncCheckpointAgent::PersistLoop() {
    for (;;) {
        const auto idx = buffers_.AcquireForPersist();
        if (!idx) {
            return;
        }
        auto& slot = buffers_.Payload(*idx);
        obs::TraceContext ctx = slot.ctx;
        ctx.phase = "persist";
        const obs::TraceContextScope ctx_scope(ctx);
        const obs::TraceSpan span("agent.persist", "agent");
        if (!slot.shards.empty()) {
            PersistShards(slot);
            buffers_.CompletePersist(*idx);
            cv_.notify_all();
            continue;
        }
        const Seconds write_time = write_time_(slot.data.size());
        clock_.Advance(write_time * cost_.time_scale);
        bool persisted = true;
        try {
            store_.Put(key_prefix_ + "/ckpt", slot.data);
        } catch (const StoreError& e) {
            persisted = false;
            static obs::Counter& failures =
                obs::MetricsRegistry::Instance().GetCounter(
                    "agent.persist_failures");
            failures.Add();
            MOC_WARN << "agent: persist of iteration " << slot.iteration
                     << " failed (" << StoreErrorKindName(e.kind())
                     << "); checkpoint dropped";
        }
        static obs::Counter& persist_bytes =
            obs::MetricsRegistry::Instance().GetCounter("agent.persist_bytes");
        static obs::Histogram& persist_seconds =
            obs::MetricsRegistry::Instance().GetHistogram("agent.persist_seconds");
        persist_seconds.Observe(write_time * cost_.time_scale);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (persisted) {
                persist_bytes.Add(slot.data.size());
                stats_.bytes_persisted += slot.data.size();
                ++stats_.checkpoints_persisted;
                latest_persisted_ = slot.iteration;
            } else {
                ++stats_.persist_failures;
            }
        }
        buffers_.CompletePersist(*idx);
        cv_.notify_all();
    }
}

void
AsyncCheckpointAgent::PersistShards(TripleBuffer::Slot& slot) {
    PersistPipeline* pipeline = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        pipeline = pipeline_;
    }
    MOC_ASSERT(pipeline != nullptr, "sharded slot without a pipeline");
    // The pipeline's workers charge the write cost and run the commit
    // protocol (versioned keys, verify, dedup, manifest records); the agent
    // only waits for its own batch so the buffer can rotate.
    const auto batch = pipeline->MakeBatch();
    for (auto& shard : slot.shards) {
        pipeline->Submit(key_prefix_ + "/" + shard.key, std::move(shard.data),
                         slot.iteration, batch, slot.ctx);
    }
    batch->Wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.bytes_persisted += batch->bytes_written();
        stats_.shards_persisted += batch->written();
        stats_.shards_deduped += batch->deduped();
        if (batch->failed() == 0) {
            ++stats_.checkpoints_persisted;
            latest_persisted_ = slot.iteration;
        } else {
            ++stats_.persist_failures;
        }
    }
    slot.shards.clear();
}

}  // namespace moc
