#ifndef MOC_CKPT_TRIPLE_BUFFER_H_
#define MOC_CKPT_TRIPLE_BUFFER_H_

/**
 * @file
 * The triple-buffer state machine of Section 5.2 (Fig. 9).
 *
 * Three buffers rotate through snapshot -> persist -> recovery roles:
 *  - a *snapshot* buffer receives the GPU->CPU copy of a new checkpoint;
 *  - once filled, it becomes the *persist* buffer (if no persist is in
 *    flight, else it waits filled);
 *  - once persisted, it becomes the *recovery* buffer — the newest complete
 *    checkpoint recovery may read — releasing the previous recovery buffer
 *    back to snapshot duty.
 *
 * The FSM guarantees data integrity during saving (a buffer being filled or
 * persisted is never exposed for recovery) and consistency during recovery
 * (the recovery buffer is always a fully persisted checkpoint).
 */

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "storage/object_store.h"

namespace moc {

/** One keyed shard of a checkpoint event (the per-shard persist path). */
struct NamedShard {
    /** Store key of the unit, without rank prefix or version suffix. */
    std::string key;
    Blob data;
};

/** Lifecycle states of one buffer. */
enum class BufferState {
    kFree,       ///< snapshot status, empty, acquirable
    kFilling,    ///< snapshot in progress
    kFilled,     ///< snapshot complete, waiting for the persist slot
    kPersisting, ///< persist in progress
    kRecovery,   ///< holds the latest persisted checkpoint
};

/**
 * Thread-safe triple buffer. One producer (the snapshot path) and one
 * consumer (the persist path) coordinate through it.
 */
class TripleBuffer {
  public:
    static constexpr std::size_t kNumBuffers = 3;

    /** Payload of one buffer. */
    struct Slot {
        /** Monolithic payload (legacy latest-wins persist path). */
        Blob data;
        /** Keyed shards (per-shard persist path); empty in blob mode. */
        std::vector<NamedShard> shards;
        std::size_t iteration = 0;
        /** Checkpoint-event identity, carried across the snapshot->persist
            thread hop for the flight recorder (obs/critical_path.h). */
        obs::TraceContext ctx;
    };

    TripleBuffer();

    /**
     * Blocks until a free buffer exists, marks it kFilling and returns its
     * index. The caller fills Payload(idx) and then calls CompleteSnapshot.
     */
    std::size_t AcquireForSnapshot();

    /** Non-blocking variant; nullopt when no buffer is free. */
    std::optional<std::size_t> TryAcquireForSnapshot();

    /** Marks @p idx filled; it becomes eligible for persisting. */
    void CompleteSnapshot(std::size_t idx);

    /**
     * Blocks until a filled buffer exists and no persist is in flight;
     * marks it kPersisting and returns its index. Returns nullopt after
     * Shutdown() once nothing remains to persist.
     */
    std::optional<std::size_t> AcquireForPersist();

    /**
     * Marks @p idx persisted: it becomes the recovery buffer, and the
     * previous recovery buffer (if any) returns to kFree.
     */
    void CompletePersist(std::size_t idx);

    /** Index of the current recovery buffer, if one exists. */
    std::optional<std::size_t> RecoveryBuffer() const;

    /** Mutable access to a slot's payload (valid while held by the caller). */
    Slot& Payload(std::size_t idx);

    BufferState state(std::size_t idx) const;

    /** Wakes blocked waiters; AcquireForPersist drains then returns nullopt. */
    void Shutdown();

    /** Blocks until every filled/persisting buffer has completed persist. */
    void WaitPersistDrained();

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    BufferState states_[kNumBuffers];
    Slot slots_[kNumBuffers];
    bool shutdown_ = false;
};

}  // namespace moc

#endif  // MOC_CKPT_TRIPLE_BUFFER_H_
