#ifndef MOC_CKPT_CLUSTER_ENGINE_H_
#define MOC_CKPT_CLUSTER_ENGINE_H_

/**
 * @file
 * Cluster-wide checkpoint execution: runs a ShardPlan through one
 * asynchronous agent per rank, concurrently, and measures what the
 * analytical model only predicts — the makespan set by the bottleneck rank
 * (Section 6.2.1's "the duration of the blocking checkpointing process is
 * primarily determined by the bottleneck rank").
 *
 * The persist path implements the cluster commit protocol
 * (docs/FAULT_MODEL.md): every ShardItem is written under its own versioned
 * key "rank<r>/<item.key>@<iteration>", drained by a bounded persist worker
 * pool that CRC-verifies each write and dedups shards unchanged since the
 * last sealed generation; the generation is sealed in the manifest — and
 * only then offered as a restart target — when every rank's every shard
 * landed and verified. A legacy monolithic mode (one latest-wins blob per
 * rank, no manifest) remains for A/B measurement of exactly the torn-
 * checkpoint failure mode the protocol removes.
 */

#include <functional>
#include <memory>
#include <vector>

#include "ckpt/async_agent.h"
#include "ckpt/persist_pipeline.h"
#include "ckpt/rank_coordinator.h"
#include "core/sharding.h"
#include "net/inproc_transport.h"
#include "storage/manifest.h"
#include "storage/persistent_store.h"
#include "util/clock.h"

namespace moc {

/** Produces the serialized payload for one shard item. */
using BlobProvider = std::function<Blob(const ShardItem& item)>;

/**
 * Deterministic synthetic payload for one shard item: size-preserving
 * (1 planned MiB -> 1 synthetic KiB) and filled from a PRNG seeded by the
 * item's key and @p salt, so two items never share content by accident and
 * a re-serialization of the same (key, salt) is bit-identical — the
 * property content-hash dedup keys on.
 */
Blob SyntheticShardBytes(const ShardItem& item, std::uint64_t salt = 0);

/**
 * A provider that fabricates each item's blob via SyntheticShardBytes.
 * Same @p salt -> identical bytes per key (dedup hits); bump the salt for
 * keys whose state "trained" between events.
 */
BlobProvider SyntheticBlobProvider(std::uint64_t salt = 0);

/** Persist-path configuration of the engine. */
struct ClusterEngineOptions {
    /** Per-shard keyed commit protocol; false = legacy monolithic blobs. */
    bool per_shard = true;
    /** Content-hash dedup against the last sealed generation. */
    bool dedup = true;
    /** Delta-encode changed shards against the last sealed generation
        (ckpt/persist_pipeline.h). Per-shard mode only. */
    bool delta = false;
    /** Chunk granularity of the delta diff. */
    std::size_t delta_chunk_bytes = 64 * 1024;
    /** Deltas allowed on one full write before a full write is forced. */
    std::size_t max_delta_chain = 8;
    /** Read back and CRC-verify every shard write before recording it. */
    bool verify = true;
    /** Persist pool workers; 0 = one per rank. */
    std::size_t persist_workers = 0;
    /** Bounded submit queue depth; 0 = 4x workers. */
    std::size_t queue_capacity = 0;
    /**
     * Generation registry. nullptr = the engine owns a private manifest
     * (see manifest()). The caller keeps ownership otherwise.
     */
    CheckpointManifest* manifest = nullptr;
    /**
     * Store key the manifest JSON is written to after every event
     * (best-effort), so offline tools (`moc_cli fsck`) can audit the
     * directory. Empty = don't write.
     */
    std::string manifest_key = "meta/manifest";
    /**
     * Stall-watchdog deadline for one shard write+verify, wall seconds.
     * Any positive budget makes the engine own a StallWatchdog and wire it
     * into the persist pipeline; an op over budget journals a `stall`
     * event and bumps obs.stall.* (see obs/watchdog.h). 0 = off.
     */
    double shard_deadline_s = 0.0;
    /** Stall-watchdog deadline for the seal barrier's drain (0 = off). */
    double seal_deadline_s = 0.0;
    /**
     * Deadline for the transport barrier: how long the coordinator waits
     * for every rank's kRankDone before treating the event as incomplete
     * (see ckpt/rank_coordinator.h). In-process ranks only miss it when a
     * rank thread wedges, so the default is generous.
     */
    double barrier_deadline_s = 30.0;
};

/** Measured outcome of one cluster checkpoint (all fields per-call). */
struct ClusterRunStats {
    /** The transport barrier saw every rank's kRankDone in time. */
    bool barrier_complete = false;
    /** Wall time the coordinator spent waiting on the kRankDone barrier. */
    Seconds barrier_wait = 0.0;
    /** Wall time until every rank finished its snapshot phase. */
    Seconds snapshot_makespan = 0.0;
    /** Wall time until every rank's persist drained. */
    Seconds total_makespan = 0.0;
    /** Per-rank GPU->CPU snapshot durations (copy + stall only). */
    std::vector<Seconds> per_rank_snapshot;
    /** Per-rank CPU-side blob serialization durations (provider calls). */
    std::vector<Seconds> per_rank_serialize;
    /** Shards (or monolithic blobs) physically persisted by this call. */
    std::size_t keys_persisted = 0;
    /** Physical bytes written by this call. */
    Bytes bytes_persisted = 0;
    /** Shards recorded by dedup reference instead of re-persisted. */
    std::size_t keys_deduped = 0;
    /** Bytes dedup avoided re-persisting. */
    Bytes bytes_deduped = 0;
    /** Shards persisted as changed-chunk delta records. */
    std::size_t keys_delta = 0;
    /** Logical bytes delta encoding avoided re-persisting. */
    Bytes bytes_delta_saved = 0;
    /** Full writes forced because a delta chain hit max_delta_chain. */
    std::size_t forced_full = 0;
    /** Shard writes that failed (StoreError or verify mismatch). */
    std::size_t persist_failures = 0;
    /** The generation this event committed (per-shard mode). */
    std::size_t generation = 0;
    /** Commit protocol outcome; always false in monolithic mode. */
    bool sealed = false;
};

/**
 * One asynchronous checkpoint agent per rank, executing shard plans.
 */
class ClusterCheckpointEngine {
  public:
    /**
     * @param store shared persistent backend (write cost from store.io()).
     * @param num_ranks agents to spawn.
     * @param cost per-agent transfer-rate model (use a small time_scale:
     *        phase durations sleep for real).
     */
    ClusterCheckpointEngine(PersistentStore& store, std::size_t num_ranks,
                            const AgentCostModel& cost,
                            const ClusterEngineOptions& options = {});

    /**
     * Engine over any ObjectStore (a FileStore, a FaultyStore chain, ...);
     * write cost from cost.persist_bandwidth.
     */
    ClusterCheckpointEngine(ObjectStore& store, std::size_t num_ranks,
                            const AgentCostModel& cost,
                            const ClusterEngineOptions& options = {});

    /**
     * Executes one checkpoint event: every rank serializes its items via
     * @p provider and checkpoints through its own agent. Blocks until all
     * persists drain and the commit protocol ran. All ClusterRunStats
     * fields report this call only (per-call deltas, not agent lifetime
     * totals). Iterations must be strictly increasing across calls.
     */
    ClusterRunStats Execute(const ShardPlan& plan, const BlobProvider& provider,
                            std::size_t iteration);

    std::size_t num_ranks() const { return agents_.size(); }

    /** The generation registry the commit protocol writes to. */
    const CheckpointManifest& manifest() const { return *manifest_; }

    const ClusterEngineOptions& options() const { return options_; }

  private:
    void Init(std::size_t num_ranks, const AgentCostModel& cost,
              WriteCostFn write_cost);

    ObjectStore& store_;
    ClusterEngineOptions options_;
    std::unique_ptr<CheckpointManifest> owned_manifest_;
    CheckpointManifest* manifest_ = nullptr;
    /**
     * Rank coordination fabric: the begin/done barrier of every Execute
     * runs over these InprocTransport endpoints — the same protocol
     * (ckpt/rank_coordinator.h) the multi-process gauntlet speaks over
     * TCP. Declared before agents_ so endpoints outlive rank users.
     */
    net::InprocHub hub_;
    std::unique_ptr<net::InprocTransport> coord_transport_;
    std::vector<std::unique_ptr<net::InprocTransport>> rank_transports_;
    std::unique_ptr<CheckpointCoordinator> coordinator_;
    /** Declared before pipeline_ so it outlives the pipeline, which holds
        a raw pointer to it. */
    std::unique_ptr<obs::StallWatchdog> watchdog_;
    std::unique_ptr<PersistPipeline> pipeline_;
    std::vector<std::unique_ptr<AsyncCheckpointAgent>> agents_;
    std::size_t last_iteration_ = 0;
    bool has_executed_ = false;
};

}  // namespace moc

#endif  // MOC_CKPT_CLUSTER_ENGINE_H_
