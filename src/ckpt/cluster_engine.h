#ifndef MOC_CKPT_CLUSTER_ENGINE_H_
#define MOC_CKPT_CLUSTER_ENGINE_H_

/**
 * @file
 * Cluster-wide checkpoint execution: runs a ShardPlan through one
 * asynchronous agent per rank, concurrently, and measures what the
 * analytical model only predicts — the makespan set by the bottleneck rank
 * (Section 6.2.1's "the duration of the blocking checkpointing process is
 * primarily determined by the bottleneck rank").
 */

#include <functional>
#include <vector>

#include "ckpt/async_agent.h"
#include "core/sharding.h"
#include "storage/persistent_store.h"
#include "util/clock.h"

namespace moc {

/** Produces the serialized payload for one shard item. */
using BlobProvider = std::function<Blob(const ShardItem& item)>;

/** A provider that fabricates a blob of the item's planned size. */
BlobProvider SyntheticBlobProvider();

/** Measured outcome of one cluster checkpoint. */
struct ClusterRunStats {
    /** Wall time until every rank finished its snapshot phase. */
    Seconds snapshot_makespan = 0.0;
    /** Wall time until every rank's persist drained. */
    Seconds total_makespan = 0.0;
    /** Per-rank snapshot durations. */
    std::vector<Seconds> per_rank_snapshot;
    std::size_t keys_persisted = 0;
    Bytes bytes_persisted = 0;
};

/**
 * One asynchronous checkpoint agent per rank, executing shard plans.
 */
class ClusterCheckpointEngine {
  public:
    /**
     * @param store shared persistent backend.
     * @param num_ranks agents to spawn.
     * @param cost per-agent transfer-rate model (use a small time_scale:
     *        phase durations sleep for real).
     */
    ClusterCheckpointEngine(PersistentStore& store, std::size_t num_ranks,
                            const AgentCostModel& cost);

    /**
     * Executes one checkpoint event: every rank concatenates its items via
     * @p provider and checkpoints through its own agent. Blocks until all
     * persists drain. Note: keys_persisted / bytes_persisted report the
     * agents' lifetime totals (cumulative across Execute calls).
     */
    ClusterRunStats Execute(const ShardPlan& plan, const BlobProvider& provider,
                            std::size_t iteration);

    std::size_t num_ranks() const { return agents_.size(); }

  private:
    PersistentStore& store_;
    std::vector<std::unique_ptr<AsyncCheckpointAgent>> agents_;
};

}  // namespace moc

#endif  // MOC_CKPT_CLUSTER_ENGINE_H_
