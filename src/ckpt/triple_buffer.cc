#include "ckpt/triple_buffer.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace moc {

namespace {

obs::Counter&
BufferCounter(const char* name) {
    return obs::MetricsRegistry::Instance().GetCounter(name);
}

}  // namespace

TripleBuffer::TripleBuffer() {
    for (auto& s : states_) {
        s = BufferState::kFree;
    }
}

std::size_t
TripleBuffer::AcquireForSnapshot() {
    static obs::Counter& full_waits = BufferCounter("buffer.full_waits");
    std::unique_lock<std::mutex> lock(mu_);
    bool waited = false;
    for (;;) {
        for (std::size_t i = 0; i < kNumBuffers; ++i) {
            if (states_[i] == BufferState::kFree) {
                states_[i] = BufferState::kFilling;
                return i;
            }
        }
        if (!waited) {
            // All three buffers busy: the snapshot path is about to block —
            // the "buffer-full" backpressure event of Fig. 9.
            waited = true;
            full_waits.Add();
        }
        cv_.wait(lock);
    }
}

std::optional<std::size_t>
TripleBuffer::TryAcquireForSnapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < kNumBuffers; ++i) {
        if (states_[i] == BufferState::kFree) {
            states_[i] = BufferState::kFilling;
            return i;
        }
    }
    return std::nullopt;
}

void
TripleBuffer::CompleteSnapshot(std::size_t idx) {
    std::lock_guard<std::mutex> lock(mu_);
    MOC_CHECK_ARG(idx < kNumBuffers, "buffer index out of range");
    MOC_ASSERT(states_[idx] == BufferState::kFilling,
               "CompleteSnapshot on a buffer not being filled");
    states_[idx] = BufferState::kFilled;
    static obs::Counter& snapshots = BufferCounter("buffer.snapshots");
    snapshots.Add();
    cv_.notify_all();
}

std::optional<std::size_t>
TripleBuffer::AcquireForPersist() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        bool persisting = false;
        for (std::size_t i = 0; i < kNumBuffers; ++i) {
            if (states_[i] == BufferState::kPersisting) {
                persisting = true;
            }
        }
        if (!persisting) {
            // Oldest filled buffer first (by iteration).
            std::optional<std::size_t> pick;
            for (std::size_t i = 0; i < kNumBuffers; ++i) {
                if (states_[i] == BufferState::kFilled &&
                    (!pick || slots_[i].iteration < slots_[*pick].iteration)) {
                    pick = i;
                }
            }
            if (pick) {
                states_[*pick] = BufferState::kPersisting;
                return pick;
            }
        }
        if (shutdown_) {
            return std::nullopt;
        }
        cv_.wait(lock);
    }
}

void
TripleBuffer::CompletePersist(std::size_t idx) {
    std::lock_guard<std::mutex> lock(mu_);
    MOC_CHECK_ARG(idx < kNumBuffers, "buffer index out of range");
    MOC_ASSERT(states_[idx] == BufferState::kPersisting,
               "CompletePersist on a buffer not persisting");
    for (std::size_t i = 0; i < kNumBuffers; ++i) {
        if (i != idx && states_[i] == BufferState::kRecovery) {
            states_[i] = BufferState::kFree;
        }
    }
    states_[idx] = BufferState::kRecovery;
    static obs::Counter& persists = BufferCounter("buffer.persists");
    persists.Add();
    cv_.notify_all();
}

std::optional<std::size_t>
TripleBuffer::RecoveryBuffer() const {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < kNumBuffers; ++i) {
        if (states_[i] == BufferState::kRecovery) {
            return i;
        }
    }
    return std::nullopt;
}

TripleBuffer::Slot&
TripleBuffer::Payload(std::size_t idx) {
    MOC_CHECK_ARG(idx < kNumBuffers, "buffer index out of range");
    return slots_[idx];
}

BufferState
TripleBuffer::state(std::size_t idx) const {
    std::lock_guard<std::mutex> lock(mu_);
    MOC_CHECK_ARG(idx < kNumBuffers, "buffer index out of range");
    return states_[idx];
}

void
TripleBuffer::Shutdown() {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
}

void
TripleBuffer::WaitPersistDrained() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
        for (std::size_t i = 0; i < kNumBuffers; ++i) {
            if (states_[i] == BufferState::kFilled ||
                states_[i] == BufferState::kPersisting) {
                return false;
            }
        }
        return true;
    });
}

}  // namespace moc
