#ifndef MOC_CKPT_PERSIST_PIPELINE_H_
#define MOC_CKPT_PERSIST_PIPELINE_H_

/**
 * @file
 * The cluster persist pipeline: a bounded pool of persist workers draining
 * per-shard keyed writes into the persistent store, with the commit
 * protocol that makes a cluster checkpoint atomic at the generation level
 * (docs/FAULT_MODEL.md, "Cluster commit protocol"):
 *
 *  - every shard is written under its *versioned* key
 *    ("<rank>/<unit>@<iteration>", see VersionedShardKey), never
 *    latest-wins, so a failing event cannot damage an older generation;
 *  - each write is CRC-32C hashed and (optionally) read back and verified
 *    before the manifest records it;
 *  - a shard whose content identity — (byte size, CRC-32C, FNV-1a 64), two
 *    structurally unrelated hashes so a 32-bit collision cannot silently
 *    alias two different blobs — matches the last *sealed* generation's
 *    entry is recorded by reference instead of re-persisted — under PEC
 *    with K << N most expert shards are unchanged between events, so
 *    persisted bytes drop sharply (dedup);
 *  - a *changed* shard is chunk-diffed against the last sealed generation's
 *    blob (storage/delta_codec.h): when only some chunks changed, a delta
 *    record (bitmap + changed chunks) is persisted instead of the full blob
 *    — a hot expert that changed 1% of its weights persists ~1% of its
 *    bytes. Chains are bounded by max_delta_chain; at the bound (or on a
 *    size change, or when every chunk changed) a full write is forced;
 *  - the generation is sealed — and only then becomes an eligible restart
 *    target — when every rank's every shard landed and verified; any
 *    failure leaves it unsealed and recovery falls back to the previous
 *    sealed generation.
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "obs/watchdog.h"
#include "storage/delta_codec.h"
#include "storage/manifest.h"
#include "storage/object_store.h"
#include "util/clock.h"

namespace moc {

/** Simulated seconds one persist write of N bytes takes (nullable). */
using WriteCostFn = std::function<Seconds(Bytes)>;

/** Tuning knobs of the pipeline. */
struct PersistPipelineOptions {
    /** Persist workers draining the shard queue. */
    std::size_t workers = 4;
    /** Bounded queue depth; Submit blocks when full (backpressure). */
    std::size_t queue_capacity = 16;
    /** Read every write back and compare its CRC-32C before recording. */
    bool verify = true;
    /** Skip re-persisting shards unchanged since the last sealed gen. */
    bool dedup = true;
    /** Delta-encode changed shards against the last sealed generation. */
    bool delta = false;
    /** Chunk granularity of the delta diff. */
    std::size_t delta_chunk_bytes = 64 * 1024;
    /**
     * Deltas allowed on top of one full write before the next changed
     * shard is forced full again. Bounds restore cost and the number of
     * generations a damaged base can take down.
     */
    std::size_t max_delta_chain = 8;
    /** Wall-time scale applied to the write-cost sleeps. */
    double time_scale = 1.0;
    /** Stall monitor for in-flight ops (optional; must outlive the
        pipeline). Armed only when a budget below is positive. */
    obs::StallWatchdog* watchdog = nullptr;
    /** Deadline budget for one shard write+verify, wall seconds (0 = off). */
    double shard_budget_s = 0.0;
    /** Deadline budget for the seal barrier's drain wait (0 = off). */
    double seal_budget_s = 0.0;
};

/** Per-generation outcome of the commit protocol. */
struct GenerationCommitStats {
    std::size_t iteration = 0;
    /** Shards submitted to this generation. */
    std::size_t shards = 0;
    /** Shards physically written (and verified, if enabled). */
    std::size_t shards_written = 0;
    /** Shards recorded by reference to an older identical blob. */
    std::size_t shards_deduped = 0;
    /** Shards persisted as changed-chunk delta records (subset of
        shards_written). */
    std::size_t shards_delta = 0;
    /** Full writes forced because a chain reached max_delta_chain. */
    std::size_t forced_full = 0;
    /** Shard writes that failed (StoreError or verification mismatch). */
    std::size_t failures = 0;
    Bytes bytes_written = 0;
    /** Bytes dedup avoided re-persisting. */
    Bytes bytes_deduped = 0;
    /** Logical bytes delta encoding avoided re-persisting (logical size
        minus delta record size, summed over delta shards). */
    Bytes bytes_delta_saved = 0;
    /** All shards landed and verified; the generation is a restart target. */
    bool sealed = false;
};

/**
 * Completion handle for one batch of shard submissions (one rank's slice of
 * a checkpoint event). The submitter waits on it to learn when its shards
 * have drained, without blocking on other ranks' shards.
 */
class ShardBatch {
  public:
    /** Blocks until every shard submitted with this batch completed. */
    void Wait();

    /** Batch outcome; valid after Wait(). */
    std::size_t written() const;
    std::size_t deduped() const;
    std::size_t failed() const;
    Bytes bytes_written() const;

  private:
    friend class PersistPipeline;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
    std::size_t written_ = 0;
    std::size_t deduped_ = 0;
    std::size_t failed_ = 0;
    Bytes bytes_written_ = 0;
};

/**
 * Bounded persist worker pool implementing the cluster commit protocol.
 * Thread-safe: rank threads submit concurrently; workers drain concurrently.
 */
class PersistPipeline {
  public:
    /**
     * @param store destination of shard blobs (shared by all ranks).
     * @param manifest generation/version registry the protocol commits to.
     * @param write_cost simulated write duration, or nullptr for none.
     */
    PersistPipeline(ObjectStore& store, CheckpointManifest& manifest,
                    WriteCostFn write_cost,
                    const PersistPipelineOptions& options = {});

    /** Drains the queue and joins the workers. */
    ~PersistPipeline();

    PersistPipeline(const PersistPipeline&) = delete;
    PersistPipeline& operator=(const PersistPipeline&) = delete;

    /**
     * Opens generation @p iteration for shard submissions. Generations are
     * monotonic and non-overlapping: the previous one must be finished.
     */
    void BeginGeneration(std::size_t iteration);

    /** Creates a completion handle for one submitter's shard batch. */
    std::shared_ptr<ShardBatch> MakeBatch();

    /**
     * Enqueues one keyed shard write for the open generation. Blocks while
     * the queue is at capacity. @p batch (optional) is signalled when this
     * shard completes. @p ctx (optional) is the checkpoint-event identity
     * the worker installs while executing the job, so persist/verify spans
     * land in the submitting rank's lane of the flight recorder.
     */
    void Submit(std::string key, Blob blob, std::size_t iteration,
                std::shared_ptr<ShardBatch> batch = nullptr,
                const obs::TraceContext& ctx = {});

    /**
     * Waits until every submitted shard of the open generation drained,
     * then runs the seal rule: all shards written and verified -> the
     * manifest generation is sealed (MarkCheckpointComplete) and becomes
     * the dedup baseline for the next event; otherwise it stays unsealed
     * and is never offered as a restart target. Emits a `cluster_seal`
     * journal event either way.
     */
    GenerationCommitStats FinishGeneration();

    const PersistPipelineOptions& options() const { return options_; }

  private:
    struct Job {
        std::string key;
        Blob blob;
        std::size_t iteration = 0;
        std::shared_ptr<ShardBatch> batch;
        obs::TraceContext ctx;
    };

    /** Content identity of a sealed shard, for dedup and delta diffing. */
    struct SealedEntry {
        std::uint32_t crc = 0;
        /** Second, structurally unrelated hash: two same-size blobs that
            collide on CRC-32C must still not dedup against each other. */
        std::uint64_t fnv = 0;
        Bytes bytes = 0;
        /** Iteration whose physical blob holds the content. */
        std::size_t physical_iteration = 0;
        /** Deltas already stacked on the last full write of this key. */
        std::size_t chain_length = 0;
        /** Per-chunk identities of the sealed blob (delta mode only);
            shared so staging a dedup ref doesn't copy the vector. */
        std::shared_ptr<const std::vector<ChunkId>> chunks;
    };

    void WorkerLoop();
    void Execute(Job job);
    void CompleteJob(const Job& job, bool written, bool deduped, bool failed,
                     Bytes bytes);

    ObjectStore& store_;
    CheckpointManifest& manifest_;
    WriteCostFn write_cost_;
    PersistPipelineOptions options_;
    WallClock clock_;

    std::mutex mu_;
    std::condition_variable queue_cv_;   ///< waiting for space or work
    std::condition_variable drain_cv_;   ///< waiting for in-flight == 0
    std::deque<Job> queue_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;

    /** Open generation state (guarded by mu_). */
    std::optional<std::size_t> open_generation_;
    GenerationCommitStats gen_stats_;
    /** Records staged for the open generation, folded into the dedup
        baseline on seal. */
    std::vector<std::pair<std::string, SealedEntry>> staged_records_;

    /** key -> content identity in the last sealed generation. */
    std::map<std::string, SealedEntry> sealed_baseline_;

    std::vector<std::thread> workers_;
};

}  // namespace moc

#endif  // MOC_CKPT_PERSIST_PIPELINE_H_
