#ifndef MOC_CKPT_ASYNC_AGENT_H_
#define MOC_CKPT_ASYNC_AGENT_H_

/**
 * @file
 * The per-node asynchronous checkpointing agent (Section 5.2): a real
 * threaded two-phase pipeline. The training thread hands the agent a
 * serialized state blob; an internal snapshot thread performs the GPU->CPU
 * copy (costed by bandwidth), and a persist thread drains filled buffers to
 * the persistent store. The training thread may ask how long it must stall
 * before a weight update (the "S" blocks of Fig. 3).
 */

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "ckpt/triple_buffer.h"
#include "storage/object_store.h"
#include "storage/persistent_store.h"
#include "util/clock.h"

namespace moc {

class PersistPipeline;

/** Transfer-rate model of the agent's two phases. */
struct AgentCostModel {
    /** GPU -> CPU copy bandwidth, bytes/s. */
    double snapshot_bandwidth = 1.0 * kGiB;
    /** CPU -> storage bandwidth, bytes/s. */
    double persist_bandwidth = 0.5 * kGiB;
    /**
     * Wall-time scale: phase durations are multiplied by this before
     * sleeping, so tests can run a "1 GiB" checkpoint in milliseconds while
     * preserving the ratios that drive overlap behaviour.
     */
    double time_scale = 1.0;
};

/** Aggregate statistics of an agent's lifetime. */
struct AgentStats {
    std::size_t checkpoints_requested = 0;
    std::size_t checkpoints_persisted = 0;
    std::size_t snapshot_stalls = 0;
    Seconds total_stall_time = 0.0;
    Bytes bytes_snapshotted = 0;
    Bytes bytes_persisted = 0;
    /** Persist writes the store rejected (StoreError); checkpoint dropped. */
    std::size_t persist_failures = 0;
    /** Keyed shards physically written (per-shard persist path). */
    std::size_t shards_persisted = 0;
    /** Keyed shards recorded by dedup reference instead of re-persisted. */
    std::size_t shards_deduped = 0;
};

/**
 * One node's asynchronous checkpoint agent.
 */
class AsyncCheckpointAgent {
  public:
    /**
     * @param store destination of persisted checkpoints.
     * @param key_prefix store key prefix for this agent's checkpoints;
     *        checkpoints are stored as "<prefix>/ckpt" (latest wins).
     */
    AsyncCheckpointAgent(PersistentStore& store, std::string key_prefix,
                         const AgentCostModel& cost);

    /**
     * Agent over any ObjectStore (a FileStore, a FaultyStore chain, ...);
     * the persist phase is costed by cost.persist_bandwidth. A store that
     * throws StoreError drops that checkpoint and counts a persist failure
     * instead of killing the persist thread.
     */
    AsyncCheckpointAgent(ObjectStore& store, std::string key_prefix,
                         const AgentCostModel& cost);

    /** Stops the pipeline (drains pending persists first). */
    ~AsyncCheckpointAgent();

    AsyncCheckpointAgent(const AsyncCheckpointAgent&) = delete;
    AsyncCheckpointAgent& operator=(const AsyncCheckpointAgent&) = delete;

    /**
     * Initiates an asynchronous checkpoint of @p state for @p iteration.
     * Blocks only if all three buffers are busy (itself a stall, counted).
     * @p ctx (optional) is the checkpoint-event identity stamped on the
     * snapshot/persist spans this request produces (obs/trace.h); it rides
     * the triple-buffer slot across the agent's thread hops.
     */
    void RequestCheckpoint(Blob state, std::size_t iteration,
                           const obs::TraceContext& ctx = {});

    /**
     * Routes this agent's persist phase through @p pipeline: shards of a
     * sharded checkpoint are submitted as keyed writes
     * ("<prefix>/<shard.key>@<iteration>") instead of one latest-wins
     * blob. The pipeline must outlive the agent. Call before the first
     * RequestShardedCheckpoint.
     */
    void AttachPipeline(PersistPipeline* pipeline);

    /**
     * Initiates an asynchronous *sharded* checkpoint: the snapshot phase
     * copies every shard (costed by their total bytes), the persist phase
     * drains them through the attached PersistPipeline as per-shard keyed
     * writes. Requires AttachPipeline.
     */
    void RequestShardedCheckpoint(std::vector<NamedShard> shards,
                                  std::size_t iteration,
                                  const obs::TraceContext& ctx = {});

    /**
     * Blocks until the most recently requested snapshot has finished its
     * GPU->CPU phase — the paper's pre-weight-update barrier. Returns the
     * time spent waiting.
     */
    Seconds WaitSnapshotComplete();

    /** Blocks until every requested checkpoint is persisted. */
    void Drain();

    /** Iteration of the newest fully persisted checkpoint, if any. */
    std::optional<std::size_t> LatestPersistedIteration() const;

    AgentStats stats() const;

  private:
    void PersistLoop();

    /** Drains one sharded slot through the attached pipeline. */
    void PersistShards(TripleBuffer::Slot& slot);

    ObjectStore& store_;
    /** Simulated seconds one persist write of N bytes takes. */
    std::function<Seconds(Bytes)> write_time_;
    std::string key_prefix_;
    AgentCostModel cost_;
    WallClock clock_;
    TripleBuffer buffers_;
    std::thread snapshot_thread_;
    std::thread persist_thread_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    /** Per-shard persist sink; nullptr = legacy latest-wins blob path. */
    PersistPipeline* pipeline_ = nullptr;
    /** Pending snapshot request handed to the snapshot thread. */
    bool snapshot_pending_ = false;
    Blob pending_blob_;
    std::vector<NamedShard> pending_shards_;
    std::size_t pending_iteration_ = 0;
    obs::TraceContext pending_ctx_;
    bool snapshot_in_flight_ = false;
    bool stop_ = false;
    std::optional<std::size_t> latest_persisted_;
    AgentStats stats_;

    void SnapshotLoop();
};

}  // namespace moc

#endif  // MOC_CKPT_ASYNC_AGENT_H_
