#include "ckpt/membership.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace moc::ckpt {

namespace {

struct StateName {
    MemberState state;
    const char* name;
};

constexpr StateName kStateNames[] = {
    {MemberState::kJoined, "joined"},   {MemberState::kLive, "live"},
    {MemberState::kSuspect, "suspect"}, {MemberState::kDead, "dead"},
    {MemberState::kRejoined, "rejoined"},
};

MemberState
StateFromName(const std::string& name) {
    for (const auto& entry : kStateNames) {
        if (name == entry.name) {
            return entry.state;
        }
    }
    throw std::invalid_argument("unknown member state '" + name + "'");
}

bool
IsLiveState(MemberState state) {
    return state == MemberState::kJoined || state == MemberState::kLive ||
           state == MemberState::kRejoined;
}

obs::Counter&
ChangesCounter() {
    static obs::Counter& c =
        obs::MetricsRegistry::Instance().GetCounter("cluster.membership.changes");
    return c;
}

}  // namespace

const char*
MemberStateName(MemberState state) {
    for (const auto& entry : kStateNames) {
        if (entry.state == state) {
            return entry.name;
        }
    }
    return "unknown";
}

Blob
EncodeJoinRequest(const JoinRequest& request) {
    net::PayloadWriter w;
    w.U32(static_cast<std::uint32_t>(request.rank));
    w.U32(request.incarnation);
    return w.Take();
}

JoinRequest
DecodeJoinRequest(const Blob& payload) {
    net::PayloadReader r(payload);
    JoinRequest request;
    request.rank = r.U32();
    request.incarnation = r.U32();
    return request;
}

void
EncodePlacementAssignments(const PlacementPlan& plan,
                           net::PayloadWriter& writer) {
    writer.U64(plan.version);
    writer.U32(static_cast<std::uint32_t>(plan.assignments.size()));
    for (const auto& [expert, hosts] : plan.assignments) {
        writer.U64(expert);
        writer.U32(static_cast<std::uint32_t>(hosts.size()));
        for (std::size_t rank : hosts) {
            writer.U32(static_cast<std::uint32_t>(rank));
        }
    }
}

PlacementPlan
DecodePlacementAssignments(net::PayloadReader& reader) {
    PlacementPlan plan;
    plan.version = reader.U64();
    const std::uint32_t experts = reader.U32();
    for (std::uint32_t i = 0; i < experts; ++i) {
        const std::uint64_t expert = reader.U64();
        const std::uint32_t hosts = reader.U32();
        std::vector<std::size_t>& out =
            plan.assignments[static_cast<std::size_t>(expert)];
        out.reserve(hosts);
        for (std::uint32_t h = 0; h < hosts; ++h) {
            out.push_back(reader.U32());
        }
    }
    return plan;
}

Blob
EncodeJoinAccept(const JoinAccept& accept) {
    net::PayloadWriter w;
    w.U8(accept.accepted ? 1 : 0);
    w.Str(accept.reason);
    w.U64(accept.membership_version);
    EncodePlacementAssignments(accept.placement, w);
    return w.Take();
}

JoinAccept
DecodeJoinAccept(const Blob& payload) {
    net::PayloadReader r(payload);
    JoinAccept accept;
    accept.accepted = r.U8() != 0;
    accept.reason = r.Str();
    accept.membership_version = r.U64();
    accept.placement = DecodePlacementAssignments(r);
    return accept;
}

std::vector<std::size_t>
MembershipSnapshot::LiveRanks() const {
    std::vector<std::size_t> live;
    for (const MemberInfo& m : members) {
        if (IsLiveState(m.state)) {
            live.push_back(m.rank);
        }
    }
    return live;
}

MembershipSnapshot
ParseMembershipJson(const std::string& text) {
    const json::Value doc = json::Parse(text);
    if (doc.StringOr("schema", "") != "moc-membership/1") {
        throw std::invalid_argument("not a moc-membership/1 document");
    }
    MembershipSnapshot snap;
    snap.version = doc.U64Or("version", 0);
    for (const json::Value& entry : doc.At("members").AsArray()) {
        MemberInfo m;
        m.rank = static_cast<std::size_t>(entry.At("rank").AsU64());
        m.state = StateFromName(entry.At("state").AsString());
        m.epoch = static_cast<std::uint32_t>(entry.U64Or("epoch", 0));
        m.incarnation =
            static_cast<std::uint32_t>(entry.U64Or("incarnation", 1));
        m.death_cause = entry.StringOr("death_cause", "");
        snap.members.push_back(std::move(m));
    }
    return snap;
}

void
MembershipTable::Transition(MemberInfo& member, MemberState to,
                            const std::string& cause) {
    const MemberState from = member.state;
    member.state = to;
    ++version_;
    std::size_t live = 0;
    for (const auto& [rank, info] : members_) {
        (void)rank;
        live += IsLiveState(info.state) ? 1 : 0;
    }
    std::ostringstream detail;
    detail << MemberStateName(from) << "->" << MemberStateName(to);
    if (!cause.empty()) {
        detail << " cause=" << cause;
    }
    detail << " epoch=" << member.epoch << " incarnation=" << member.incarnation
           << " version=" << version_;
    obs::JournalEvent event;
    event.kind = obs::EventKind::kMembershipChange;
    event.scope = static_cast<std::int64_t>(member.rank);
    event.detail = detail.str();
    obs::EventJournal::Instance().Append(std::move(event));
    ChangesCounter().Add();
    obs::MetricsRegistry::Instance()
        .GetGauge("cluster.membership.live")
        .Set(static_cast<double>(live));
    obs::MetricsRegistry::Instance()
        .GetGauge("cluster.membership.version")
        .Set(static_cast<double>(version_));
}

void
MembershipTable::AdmitInitial(std::size_t rank, std::uint32_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    MemberInfo& member = members_[rank];
    member.rank = rank;
    member.epoch = epoch;
    member.incarnation = 1;
    Transition(member, MemberState::kJoined, "connect");
}

void
MembershipTable::MarkLive(std::size_t rank) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = members_.find(rank);
    if (it == members_.end() || it->second.state == MemberState::kDead ||
        it->second.state == MemberState::kLive) {
        return;
    }
    Transition(it->second, MemberState::kLive, "barrier_done");
}

void
MembershipTable::MarkSuspect(std::size_t rank) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = members_.find(rank);
    if (it == members_.end() || it->second.state == MemberState::kDead ||
        it->second.state == MemberState::kSuspect) {
        return;
    }
    Transition(it->second, MemberState::kSuspect, "barrier_timeout");
}

void
MembershipTable::OnPeerDeath(std::size_t rank, const std::string& cause) {
    std::lock_guard<std::mutex> lock(mu_);
    MemberInfo& member = members_[rank];
    member.rank = rank;
    if (member.state == MemberState::kDead) {
        return;  // one eviction per death, however many signals arrive
    }
    member.death_cause = cause;
    Transition(member, MemberState::kDead, cause);
    static obs::Counter& deaths =
        obs::MetricsRegistry::Instance().GetCounter("cluster.membership.deaths");
    deaths.Add();
}

JoinAccept
MembershipTable::OnJoinRequest(std::size_t rank, std::uint32_t epoch,
                               std::uint32_t incarnation) {
    std::lock_guard<std::mutex> lock(mu_);
    JoinAccept verdict;
    const auto it = members_.find(rank);
    if (it != members_.end() && epoch <= it->second.epoch) {
        // A zombie: the pre-death incarnation (same epoch) or an even older
        // connection replaying. Its transport frames are already being
        // dropped by the epoch gate; refuse membership too so it can never
        // be sealed against.
        verdict.accepted = false;
        std::ostringstream why;
        why << "stale epoch " << epoch << " <= " << it->second.epoch;
        verdict.reason = why.str();
        verdict.membership_version = version_;
        return verdict;
    }
    MemberInfo& member = members_[rank];
    member.rank = rank;
    member.epoch = epoch;
    const bool rejoin =
        it != members_.end() && member.state == MemberState::kDead;
    if (rejoin) {
        member.incarnation =
            std::max(member.incarnation + 1, incarnation + 1);
        member.death_cause.clear();
        Transition(member, MemberState::kRejoined, "join_request");
        obs::JournalEvent event;
        event.kind = obs::EventKind::kRejoin;
        event.scope = static_cast<std::int64_t>(rank);
        std::ostringstream detail;
        detail << "epoch=" << epoch << " incarnation=" << member.incarnation;
        event.detail = detail.str();
        obs::EventJournal::Instance().Append(std::move(event));
        static obs::Counter& rejoins =
            obs::MetricsRegistry::Instance().GetCounter(
                "cluster.membership.rejoins");
        rejoins.Add();
    } else {
        member.incarnation = std::max<std::uint32_t>(1, incarnation);
        Transition(member, MemberState::kJoined, "join_request");
    }
    verdict.accepted = true;
    verdict.membership_version = version_;
    return verdict;
}

std::vector<std::size_t>
MembershipTable::LiveRanks() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::size_t> live;
    for (const auto& [rank, member] : members_) {
        if (IsLiveState(member.state)) {
            live.push_back(rank);
        }
    }
    return live;
}

MemberInfo
MembershipTable::Info(std::size_t rank) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = members_.find(rank);
    if (it == members_.end()) {
        MemberInfo unknown;
        unknown.rank = rank;
        unknown.state = MemberState::kDead;
        unknown.incarnation = 0;
        unknown.death_cause = "never joined";
        return unknown;
    }
    return it->second;
}

std::uint64_t
MembershipTable::version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
}

std::size_t
MembershipTable::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return members_.size();
}

std::string
MembershipTable::ToJson() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    out << "{\"schema\": \"moc-membership/1\", \"version\": " << version_
        << ", \"members\": [";
    bool first = true;
    for (const auto& [rank, member] : members_) {
        if (!first) {
            out << ", ";
        }
        first = false;
        out << "{\"rank\": " << rank << ", \"state\": \""
            << MemberStateName(member.state) << "\", \"epoch\": "
            << member.epoch << ", \"incarnation\": " << member.incarnation;
        if (!member.death_cause.empty()) {
            out << ", \"death_cause\": \"" << obs::JsonEscape(member.death_cause)
                << "\"";
        }
        out << "}";
    }
    out << "]}";
    return out.str();
}

}  // namespace moc::ckpt
