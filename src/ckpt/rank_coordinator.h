#ifndef MOC_CKPT_RANK_COORDINATOR_H_
#define MOC_CKPT_RANK_COORDINATOR_H_

/**
 * @file
 * The cluster checkpoint barrier over a Transport: how the coordinator and
 * the ranks agree that a generation is sealed — whether they are threads
 * sharing an InprocHub (ClusterCheckpointEngine) or real processes over
 * TCP (examples/cluster_procs via tools/moc_launcher).
 *
 * Protocol per checkpoint event (docs/TRANSPORT.md):
 *
 *   coordinator --kCkptBegin(iteration)--> every rank
 *   rank: persist shards, then --kRankDone(iteration, reports, ok)-->
 *   coordinator: collect a kRankDone from every participant, or a
 *   kPeerDeath for it, under the barrier deadline.
 *
 * The recovery invariant is enforced here: SealIfComplete seals a
 * generation only when *every* participant reported and *every* shard of
 * every report verified — a SIGKILL'd rank (kPeerDeath), a failed or
 * unverified shard, or a deadline miss leaves the generation unsealed, so
 * it can never become a restart target (docs/FAULT_MODEL.md).
 */

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/transport.h"
#include "storage/manifest.h"
#include "util/bytes.h"

namespace moc {

/** One rank's integrity record for one persisted shard. */
struct ShardReport {
    /** Logical shard key (already rank-qualified, e.g. "rank1/dense/1"). */
    std::string key;
    /** Generation the shard belongs to. */
    std::size_t iteration = 0;
    Bytes bytes = 0;
    /** CRC-32C of the shard bytes at write time. */
    std::uint32_t crc = 0;
    /** The write was read back and CRC-matched. */
    bool verified = false;
    /** Recorded by reference to ref_iteration instead of re-written. */
    bool deduped = false;
    std::size_t ref_iteration = 0;
    /** The write failed (StoreError after retries, or verify mismatch). */
    bool failed = false;
};

/** One rank's kRankDone message, decoded. */
struct RankDone {
    net::PeerId rank = 0;
    std::uint64_t iteration = 0;
    /** Every shard persisted fine on this rank. */
    bool ok = false;
    std::vector<ShardReport> reports;
};

/** Wire codec of the kRankDone payload. */
Blob EncodeRankDone(const RankDone& done);
/** @throws std::runtime_error on a truncated payload. */
RankDone DecodeRankDone(net::PeerId from, const Blob& payload);

/** Outcome of one coordinator-side barrier wait. */
struct BarrierResult {
    /** Every participant delivered a kRankDone for the iteration. */
    bool complete = false;
    /** The barrier deadline passed with ranks still silent. */
    bool timed_out = false;
    std::vector<RankDone> reports;
    /** Participants declared dead while the barrier waited. */
    std::vector<net::PeerId> dead;
    /**
     * kJoinRequest frames that arrived mid-barrier — a respawned rank
     * asking back in. The barrier itself never admits anyone (the
     * in-flight generation's participant set is fixed); the control loop
     * hands these to the MembershipTable *after* the seal decision, so a
     * rejoiner first participates in the next generation.
     */
    std::vector<net::Message> joins;

    /** complete, every report ok, every shard verified. */
    bool AllVerified() const;
};

/**
 * Coordinator side of the barrier. Not thread-safe; the coordinator owns
 * one and drives it from its control loop.
 */
class CheckpointCoordinator {
  public:
    CheckpointCoordinator(net::Transport& transport,
                          std::vector<net::PeerId> participants);

    /**
     * Broadcasts kCkptBegin for @p iteration; returns ranks reached.
     * @param extra appended after the iteration word — the elastic control
     *        loop ships the current placement assignments here
     *        (ckpt/membership.h codecs). Pre-elastic ranks never read past
     *        the iteration, so the extension is wire-compatible.
     */
    std::size_t BeginGeneration(std::uint64_t iteration,
                                const obs::TraceContext& ctx,
                                const Blob* extra = nullptr);

    /**
     * Collects kRankDone messages for @p iteration until every participant
     * reported or died, or @p deadline_s passed. kPeerDeath for a
     * participant counts it dead (it can no longer report; its epoch is
     * gone). Stale kRankDone frames for other iterations are dropped.
     */
    BarrierResult AwaitReports(std::uint64_t iteration, Seconds deadline_s);

    /** Broadcasts kShutdown (orderly end of run); returns ranks reached. */
    std::size_t Shutdown();

    /** Participants not yet declared dead by an earlier barrier. */
    const std::vector<net::PeerId>& participants() const {
        return participants_;
    }

    /**
     * Replaces the participant set for subsequent generations — how
     * elastic membership drives the barrier: after every membership
     * transition the control loop installs MembershipTable::LiveRanks()
     * here, so seals are always against *current* live membership.
     */
    void SetParticipants(std::vector<net::PeerId> participants) {
        participants_ = std::move(participants);
    }

    /**
     * Installs a tap on every message AwaitReports receives, *before* the
     * barrier dispatch — how the cluster observability plane sees
     * kTelemetry (and kPeerDeath) frames without owning the receive queue
     * (examples/cluster_procs feeds obs::ClusterAggregator through this).
     * The observer must not call back into the coordinator.
     */
    void SetMessageObserver(std::function<void(const net::Message&)> observer) {
        observer_ = std::move(observer);
    }

  private:
    net::Transport& transport_;
    std::vector<net::PeerId> participants_;
    std::function<void(const net::Message&)> observer_;
};

/** What a rank's AwaitBegin observed. */
struct BeginEvent {
    std::uint64_t iteration = 0;
    /** The coordinator's trace identity for the event (phase "barrier"). */
    obs::TraceContext ctx;
    /** kShutdown arrived instead: the run is over. */
    bool shutdown = false;
    /** Payload bytes after the iteration word (the placement assignments
        under elastic membership; empty from a pre-elastic coordinator). */
    Blob extra;
};

/**
 * Rank side of the barrier. Not thread-safe; each rank owns one.
 */
class RankParticipant {
  public:
    RankParticipant(net::Transport& transport,
                    net::PeerId coordinator = net::kCoordinatorPeer);

    /**
     * Waits up to @p timeout_s for the next kCkptBegin (or kShutdown).
     * Returns nullopt on timeout or coordinator death.
     */
    std::optional<BeginEvent> AwaitBegin(Seconds timeout_s);

    /** Sends this rank's kRankDone for @p iteration. */
    bool SendDone(std::uint64_t iteration, std::vector<ShardReport> reports,
                  bool ok, const obs::TraceContext& ctx);

  private:
    net::Transport& transport_;
    net::PeerId coordinator_;
};

/**
 * Records every shard report of @p result in @p manifest
 * (RecordPersistVersion, dedup refs preserved).
 */
void RecordReports(CheckpointManifest& manifest, const BarrierResult& result);

/**
 * Seals generation @p iteration in @p manifest iff @p result satisfies the
 * recovery invariant (AllVerified), journaling the outcome as a
 * cluster_seal event either way. Returns true when sealed.
 */
bool SealIfComplete(CheckpointManifest& manifest, std::uint64_t iteration,
                    const BarrierResult& result);

}  // namespace moc

#endif  // MOC_CKPT_RANK_COORDINATOR_H_
