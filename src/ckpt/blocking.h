#ifndef MOC_CKPT_BLOCKING_H_
#define MOC_CKPT_BLOCKING_H_

/**
 * @file
 * The blocking baseline checkpointer: training halts while both phases
 * (GPU->CPU copy and CPU->storage write) run to completion — the "baseline"
 * series of Fig. 12.
 */

#include <functional>
#include <string>

#include "storage/object_store.h"
#include "storage/persistent_store.h"
#include "util/clock.h"

namespace moc {

/**
 * Synchronous two-phase checkpointer with the same cost model as the
 * asynchronous agent, for apples-to-apples overhead comparison.
 */
class BlockingCheckpointer {
  public:
    BlockingCheckpointer(PersistentStore& store, std::string key_prefix,
                         double snapshot_bandwidth, double persist_bandwidth,
                         double time_scale = 1.0);

    /**
     * Baseline over any ObjectStore (a FileStore, a FaultyStore chain, ...);
     * StoreError from the store propagates to the caller.
     */
    BlockingCheckpointer(ObjectStore& store, std::string key_prefix,
                         double snapshot_bandwidth, double persist_bandwidth,
                         double time_scale = 1.0);

    /**
     * Performs the checkpoint inline; returns the time the caller was
     * blocked (snapshot + persist).
     */
    Seconds Checkpoint(const Blob& state, std::size_t iteration);

    std::optional<std::size_t> LatestPersistedIteration() const {
        return latest_persisted_;
    }

  private:
    ObjectStore& store_;
    std::string key_prefix_;
    double snapshot_bandwidth_;
    double persist_bandwidth_;
    double time_scale_;
    WallClock clock_;
    std::optional<std::size_t> latest_persisted_;
};

}  // namespace moc

#endif  // MOC_CKPT_BLOCKING_H_
