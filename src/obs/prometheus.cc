#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "obs/cluster_view.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/run_meta.h"
#include "obs/timeseries.h"

namespace moc::obs {

std::string
PromEscapeLabel(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

namespace {

void
EmitExpertGauge(std::ostringstream& out, const char* name,
                const std::vector<ExpertStat>& experts,
                std::uint64_t ExpertStat::*field) {
    out << "# TYPE " << name << " gauge\n";
    for (const ExpertStat& cell : experts) {
        out << name << "{layer=\"" << cell.layer << "\",expert=\""
            << cell.expert << "\"} " << cell.*field << "\n";
    }
}

}  // namespace

std::string
PromMetricName(const std::string& name) {
    std::string out = "moc_";
    out.reserve(name.size() + 4);
    for (const char c : name) {
        const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_';
        out += word ? c : '_';
    }
    return out;
}

std::string
MetricsPrometheus() {
    const MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
    const RunMetadata& meta = RunMeta();
    std::ostringstream out;

    out << "# TYPE moc_run_info gauge\n"
        << "moc_run_info{schema=\"" << PromEscapeLabel(meta.schema)
        << "\",build_type=\"" << PromEscapeLabel(meta.build_type)
        << "\",git_sha=\"" << PromEscapeLabel(meta.git_sha)
        << "\",command_line=\"" << PromEscapeLabel(meta.command_line)
        << "\",config_digest=\"" << PromEscapeLabel(meta.config_digest)
        << "\",role=\"" << PromEscapeLabel(meta.role) << "\"} 1\n";

    for (const auto& [name, value] : snap.counters) {
        const std::string prom = PromMetricName(name);
        out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
    }
    for (const auto& [name, value] : snap.gauges) {
        const std::string prom = PromMetricName(name);
        out << "# TYPE " << prom << " gauge\n"
            << prom << " " << JsonNumber(value) << "\n";
    }
    for (const auto& [name, data] : snap.histograms) {
        const std::string prom = PromMetricName(name);
        out << "# TYPE " << prom << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
            cumulative += data.bucket_counts[i];
            const std::string le = i < data.bounds.size()
                                       ? JsonNumber(data.bounds[i])
                                       : std::string("+Inf");
            out << prom << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
        }
        out << prom << "_sum " << JsonNumber(data.sum) << "\n"
            << prom << "_count " << data.count << "\n";
    }

    if (!snap.experts.empty()) {
        EmitExpertGauge(out, "moc_expert_last_snapshot_iteration", snap.experts,
                        &ExpertStat::last_snapshot_iteration);
        EmitExpertGauge(out, "moc_expert_last_persist_iteration", snap.experts,
                        &ExpertStat::last_persist_iteration);
        EmitExpertGauge(out, "moc_expert_snapshot_staleness", snap.experts,
                        &ExpertStat::snapshot_staleness);
        EmitExpertGauge(out, "moc_expert_persist_staleness", snap.experts,
                        &ExpertStat::persist_staleness);
        EmitExpertGauge(out, "moc_expert_lost_tokens", snap.experts,
                        &ExpertStat::lost_tokens);
        EmitExpertGauge(out, "moc_expert_snapshot_bytes_total", snap.experts,
                        &ExpertStat::snapshot_bytes);
        EmitExpertGauge(out, "moc_expert_persist_bytes_total", snap.experts,
                        &ExpertStat::persist_bytes);
    }

    // Coordinator-side cluster health (obs/cluster_view.h): one labelled
    // sample per rank heard from, mirroring the per-expert gauge idiom.
    const auto health = ClusterAggregator::Instance().Health();
    if (!health.empty()) {
        out << "# TYPE moc_rank_phase gauge\n";
        for (const auto& row : health) {
            out << "moc_rank_phase{rank=\"" << row.rank << "\",phase=\""
                << PromEscapeLabel(row.phase.empty() ? "idle" : row.phase)
                << "\"} 1\n";
        }
        out << "# TYPE moc_rank_slack_seconds gauge\n";
        for (const auto& row : health) {
            out << "moc_rank_slack_seconds{rank=\"" << row.rank << "\"} "
                << JsonNumber(row.slack_s) << "\n";
        }
        out << "# TYPE moc_rank_alive gauge\n";
        for (const auto& row : health) {
            out << "moc_rank_alive{rank=\"" << row.rank << "\"} "
                << (row.alive ? 1 : 0) << "\n";
        }
        out << "# TYPE moc_rank_straggler gauge\n";
        for (const auto& row : health) {
            out << "moc_rank_straggler{rank=\"" << row.rank << "\"} "
                << (row.straggler ? 1 : 0) << "\n";
        }
        // Death causes are transport-declared strings from another
        // process; escape them like every other foreign label value.
        out << "# TYPE moc_rank_death_cause gauge\n";
        for (const auto& row : health) {
            out << "moc_rank_death_cause{rank=\"" << row.rank
                << "\",cause=\""
                << PromEscapeLabel(row.alive ? "none" : row.death_cause)
                << "\"} " << (row.alive ? 0 : 1) << "\n";
        }
    }

    // Live time-series ring (obs/timeseries.h): enough for a scraper to
    // track trajectory freshness without parsing the /series JSON.
    const TimeSeriesRing& ring = TimeSeriesRing::Instance();
    out << "# TYPE moc_series_total gauge\n"
        << "moc_series_total " << ring.total() << "\n";
    const auto last = ring.Window(1);
    if (!last.empty()) {
        out << "# TYPE moc_series_last_iteration gauge\n"
            << "moc_series_last_iteration " << last.back().iteration << "\n"
            << "# TYPE moc_series_last_iter_seconds gauge\n"
            << "moc_series_last_iter_seconds "
            << JsonNumber(last.back().iter_seconds) << "\n"
            << "# TYPE moc_series_last_live_ranks gauge\n"
            << "moc_series_last_live_ranks " << last.back().live_ranks
            << "\n";
    }
    return out.str();
}

bool
WriteMetricsPrometheus(const std::string& path) {
    return WriteTextFile(path, MetricsPrometheus(), "prometheus metrics");
}

std::vector<PromSample>
ParsePrometheusText(const std::string& text) {
    std::vector<PromSample> samples;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto fail = [&](const std::string& message) -> void {
            throw std::invalid_argument("prometheus line " +
                                        std::to_string(lineno) + ": " + message);
        };
        std::size_t pos = line.find_first_not_of(" \t");
        if (pos == std::string::npos || line[pos] == '#') {
            continue;
        }
        PromSample sample;
        while (pos < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[pos])) != 0 ||
                line[pos] == '_' || line[pos] == ':')) {
            sample.name += line[pos++];
        }
        if (sample.name.empty()) {
            fail("expected a metric name");
        }
        if (pos < line.size() && line[pos] == '{') {
            ++pos;
            while (pos < line.size() && line[pos] != '}') {
                std::string key;
                while (pos < line.size() && line[pos] != '=') {
                    key += line[pos++];
                }
                if (pos + 1 >= line.size() || line[pos] != '=' ||
                    line[pos + 1] != '"') {
                    fail("malformed label");
                }
                pos += 2;
                std::string value;
                while (pos < line.size() && line[pos] != '"') {
                    if (line[pos] == '\\' && pos + 1 < line.size()) {
                        const char esc = line[pos + 1];
                        value += esc == 'n' ? '\n' : esc;
                        pos += 2;
                    } else {
                        value += line[pos++];
                    }
                }
                if (pos >= line.size()) {
                    fail("unterminated label value");
                }
                ++pos;  // closing quote
                sample.labels.emplace(std::move(key), std::move(value));
                if (pos < line.size() && line[pos] == ',') {
                    ++pos;
                }
            }
            if (pos >= line.size() || line[pos] != '}') {
                fail("unterminated label set");
            }
            ++pos;
        }
        while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
            ++pos;
        }
        const std::string number = line.substr(pos);
        if (number.empty()) {
            fail("missing sample value");
        }
        if (number == "+Inf") {
            sample.value = HUGE_VAL;
        } else if (number == "-Inf") {
            sample.value = -HUGE_VAL;
        } else {
            char* end = nullptr;
            sample.value = std::strtod(number.c_str(), &end);
            if (end != number.c_str() + number.size()) {
                fail("invalid sample value '" + number + "'");
            }
        }
        samples.push_back(std::move(sample));
    }
    return samples;
}

}  // namespace moc::obs
