#ifndef MOC_OBS_METRICS_H_
#define MOC_OBS_METRICS_H_

/**
 * @file
 * Process-wide metrics: named atomic counters, gauges, and fixed-bucket
 * histograms, registered once and updated lock-free from any thread.
 *
 * Call sites cache the reference in a function-local static so the hot path
 * is a single relaxed atomic op:
 *
 * @code
 *   static obs::Counter& bytes =
 *       obs::MetricsRegistry::Instance().GetCounter("ckpt.persist_bytes");
 *   bytes.Add(blob.size());
 * @endcode
 *
 * The registry never removes or reallocates a registered metric, so cached
 * references stay valid for the life of the process; ResetAll() zeroes
 * values in place (for tests and repeated bench runs).
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/expert_stats.h"

namespace moc::obs {

/** Monotonic event/byte counter. */
class Counter {
  public:
    void Add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written (or accumulated) double value, e.g. PLT or stall seconds. */
class Gauge {
  public:
    void Set(double v) { value_.store(v, std::memory_order_relaxed); }

    /** Atomic accumulate (CAS loop; gauges are not hot-path metrics). */
    void Add(double delta);

    double value() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { Set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram of double observations. Bucket @c i counts values
 * <= bounds[i] (cumulative-style "le" bounds, Prometheus convention); an
 * implicit overflow bucket counts the rest. Tracks count and sum so means
 * survive the export.
 */
class Histogram {
  public:
    /** @param bounds strictly increasing upper bounds; may be empty. */
    explicit Histogram(std::vector<double> bounds);

    void Observe(double value);

    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    const std::vector<double>& bounds() const { return bounds_; }

    /** Per-bucket counts; size() == bounds().size() + 1 (overflow last). */
    std::vector<std::uint64_t> bucket_counts() const;

    void Reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** `count` exponential bucket bounds: start, start*factor, ... */
std::vector<double> ExponentialBuckets(double start, double factor,
                                       std::size_t count);

/** Point-in-time copy of one histogram, for export. */
struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    double sum = 0.0;
};

/**
 * Estimated quantile of a histogram via linear interpolation inside the
 * bucket containing the target rank (the histogram_quantile() convention:
 * the first bucket interpolates from 0, the overflow bucket clamps to the
 * last finite bound). @p q in [0, 1]; returns 0 for an empty histogram.
 */
double HistogramQuantile(const HistogramData& data, double q);

/** Convenience wrappers over HistogramQuantile. */
double HistogramP50(const HistogramData& data);
double HistogramP95(const HistogramData& data);
double HistogramP99(const HistogramData& data);

/** Point-in-time copy of the whole registry. */
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
    /** Per-expert telemetry grid (see obs/expert_stats.h), row-major. */
    std::vector<ExpertStat> experts;
};

/**
 * Process-wide registry of named metrics. Lookup takes a mutex; updates on
 * the returned references are lock-free.
 */
class MetricsRegistry {
  public:
    static MetricsRegistry& Instance();

    /** Returns the counter named @p name, creating it on first use. */
    Counter& GetCounter(const std::string& name);

    /** Returns the gauge named @p name, creating it on first use. */
    Gauge& GetGauge(const std::string& name);

    /**
     * Returns the histogram named @p name. @p bounds is used only when the
     * histogram does not exist yet (empty = default exponential buckets).
     * @throws std::invalid_argument if @p name is registered as another kind.
     */
    Histogram& GetHistogram(const std::string& name,
                            std::vector<double> bounds = {});

    MetricsSnapshot Snapshot() const;

    /**
     * Zeroes every metric in place; cached references stay valid. Also
     * resets the per-expert telemetry grid (ExpertStatsRegistry) so re-run
     * paths don't leak attribution across runs in one process.
     */
    void ResetAll();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace moc::obs

#endif  // MOC_OBS_METRICS_H_
