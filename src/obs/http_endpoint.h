#ifndef MOC_OBS_HTTP_ENDPOINT_H_
#define MOC_OBS_HTTP_ENDPOINT_H_

/**
 * @file
 * The live observability endpoint: a minimal, dependency-free HTTP/1.1 GET
 * server over loopback TCP, serving the same exports the teardown
 * artifacts carry — while the run is still running.
 *
 * Routes:
 *   GET /metrics   Prometheus text format (obs/prometheus.h), including
 *                  the coordinator-side per-rank cluster-health gauges
 *   GET /healthz   run liveness + membership summary as JSON; HTTP 200
 *                  while every rank heard from is alive, 503 the moment
 *                  the cluster view holds a dead or suspect rank
 *   GET /ranks     the ClusterAggregator health table as `moc-ranks/1`
 *   GET /series    the per-iteration time-series ring (obs/timeseries.h)
 *                  as a `moc-series/1` window; `?last=N` bounds it
 *
 * Threading model is shed-never-block, like the telemetry publisher
 * (net/telemetry.h): an accept thread takes connections off the listener
 * and hands them to one worker over a bounded queue; when the queue is
 * full the acceptor answers 503 and closes immediately
 * (`obs.http.shed`). The worker gives each connection a fixed request
 * budget (read deadline + max request bytes) so a slow or hostile client
 * can only ever cost one bounded slot, never a stall of the training or
 * persist path — the endpoint runs entirely on its own threads and shares
 * no state with the rank transport (docs/TRANSPORT.md).
 *
 * Counters: `obs.http.requests` (answered, any status), `obs.http.errors`
 * (non-2xx answered), `obs.http.shed` (connections dropped at the door).
 *
 * HttpGet()/ParseHttpUrl() are the matching minimal client, used by
 * `moc_cli watch` and the round-trip tests.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

namespace moc::obs {

/** Live-endpoint knobs. */
struct HttpOptions {
    /** Port to bind on 127.0.0.1 (0 = ephemeral; see port()). */
    std::uint16_t port = 0;
    /** Per-connection budget to receive the full request line. */
    double request_timeout_s = 1.0;
    /** Requests larger than this are answered 400 and closed. */
    std::size_t max_request_bytes = 4096;
    /** Accepted-but-unhandled connections beyond this are shed with 503. */
    std::size_t max_pending = 16;
};

/** One answered (or to-be-answered) HTTP exchange. */
struct HttpResponse {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

/**
 * The embedded scrape server. Start() binds and spawns the accept + worker
 * threads; Stop() (or the destructor) joins them. Thread-safe.
 */
class HttpEndpoint {
  public:
    /** Handler for one GET: (path, raw query string) -> response. */
    using Handler =
        std::function<HttpResponse(const std::string& path,
                                   const std::string& query)>;

    explicit HttpEndpoint(const HttpOptions& options = {});
    ~HttpEndpoint();

    HttpEndpoint(const HttpEndpoint&) = delete;
    HttpEndpoint& operator=(const HttpEndpoint&) = delete;

    /**
     * Binds 127.0.0.1 and starts serving the default routes.
     * @throws std::runtime_error when the socket cannot be bound.
     */
    void Start();

    /** Stops serving and joins the threads (idempotent). */
    void Stop();

    /** The bound port (meaningful after Start(); 0 before). */
    std::uint16_t port() const { return port_; }

    /** Registers/overrides a route (exact path match; tests). */
    void SetRoute(const std::string& path, Handler handler);

  private:
    void AcceptLoop();
    void WorkerLoop();
    /** Reads, dispatches, answers, and closes one connection. */
    void HandleConnection(int fd);
    HttpResponse Dispatch(const std::string& method, const std::string& path,
                          const std::string& query) const;

    const HttpOptions options_;
    std::atomic<bool> running_{false};
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread accept_thread_;
    std::thread worker_thread_;

    mutable std::mutex mu_;
    std::condition_variable queue_cv_;
    std::deque<int> pending_;
    std::map<std::string, Handler> routes_;
};

/** The built-in route bodies (exposed for unit tests and `watch`). */
HttpResponse HandleMetrics();
HttpResponse HandleHealthz();
HttpResponse HandleRanks();
HttpResponse HandleSeries(const std::string& query);

/** A fetched page; status 0 never happens (unreachable returns nullopt). */
struct HttpResult {
    int status = 0;
    std::string body;
};

/**
 * Minimal HTTP/1.1 GET client against @p host:@p port. Returns nullopt
 * when the endpoint is unreachable (refused, timeout, malformed status
 * line) — the `watch` exit-code-2 case.
 */
std::optional<HttpResult> HttpGet(const std::string& host, std::uint16_t port,
                                  const std::string& path,
                                  double timeout_s = 2.0);

/** `http://host:port[/...]` decomposed; nullopt when not parseable. */
struct UrlParts {
    std::string host;
    std::uint16_t port = 0;
};
std::optional<UrlParts> ParseHttpUrl(const std::string& url);

}  // namespace moc::obs

#endif  // MOC_OBS_HTTP_ENDPOINT_H_
