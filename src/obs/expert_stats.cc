#include "obs/expert_stats.h"

#include <algorithm>

#include "util/logging.h"

namespace moc::obs {

ExpertStatsRegistry&
ExpertStatsRegistry::Instance() {
    static ExpertStatsRegistry* registry = new ExpertStatsRegistry();
    return *registry;
}

void
ExpertStatsRegistry::Configure(std::size_t num_layers, std::size_t num_experts) {
    std::lock_guard<std::mutex> lock(mu_);
    num_layers_ = num_layers;
    num_experts_ = num_experts;
    iteration_ = 0;
    cells_.assign(num_layers * num_experts, ExpertStat{});
    for (std::size_t m = 0; m < num_layers; ++m) {
        for (std::size_t e = 0; e < num_experts; ++e) {
            ExpertStat& cell = cells_[m * num_experts + e];
            cell.layer = static_cast<std::uint32_t>(m);
            cell.expert = static_cast<std::uint32_t>(e);
        }
    }
}

ExpertStat&
ExpertStatsRegistry::Cell(std::size_t layer, std::size_t expert) {
    MOC_CHECK_ARG(layer < num_layers_ && expert < num_experts_,
                  "expert stats cell (" << layer << ", " << expert
                                        << ") out of range");
    return cells_[layer * num_experts_ + expert];
}

void
ExpertStatsRegistry::SetIteration(std::uint64_t iteration) {
    std::lock_guard<std::mutex> lock(mu_);
    iteration_ = iteration;
}

void
ExpertStatsRegistry::OnSnapshot(std::size_t layer, std::size_t expert,
                                std::uint64_t iteration, std::uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    ExpertStat& cell = Cell(layer, expert);
    cell.last_snapshot_iteration = iteration;
    ++cell.snapshots;
    cell.snapshot_bytes += bytes;
}

void
ExpertStatsRegistry::OnPersist(std::size_t layer, std::size_t expert,
                               std::uint64_t iteration, std::uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    ExpertStat& cell = Cell(layer, expert);
    cell.last_persist_iteration = iteration;
    ++cell.persists;
    cell.persist_bytes += bytes;
}

void
ExpertStatsRegistry::SetLostTokens(std::size_t layer, std::size_t expert,
                                   std::uint64_t tokens) {
    std::lock_guard<std::mutex> lock(mu_);
    Cell(layer, expert).lost_tokens = tokens;
}

void
ExpertStatsRegistry::OnRecovery(std::uint64_t restart_iteration) {
    std::lock_guard<std::mutex> lock(mu_);
    iteration_ = std::min(iteration_, restart_iteration);
    for (ExpertStat& cell : cells_) {
        cell.last_snapshot_iteration =
            std::min(cell.last_snapshot_iteration, restart_iteration);
        cell.last_persist_iteration =
            std::min(cell.last_persist_iteration, restart_iteration);
    }
}

std::uint64_t
ExpertStatsRegistry::iteration() const {
    std::lock_guard<std::mutex> lock(mu_);
    return iteration_;
}

std::size_t
ExpertStatsRegistry::num_layers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_layers_;
}

std::size_t
ExpertStatsRegistry::num_experts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_experts_;
}

std::vector<ExpertStat>
ExpertStatsRegistry::Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ExpertStat> snap = cells_;
    for (ExpertStat& cell : snap) {
        cell.snapshot_staleness =
            iteration_ > cell.last_snapshot_iteration
                ? iteration_ - cell.last_snapshot_iteration
                : 0;
        cell.persist_staleness = iteration_ > cell.last_persist_iteration
                                     ? iteration_ - cell.last_persist_iteration
                                     : 0;
    }
    return snap;
}

void
ExpertStatsRegistry::Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    iteration_ = 0;
    for (ExpertStat& cell : cells_) {
        const std::uint32_t layer = cell.layer;
        const std::uint32_t expert = cell.expert;
        cell = ExpertStat{};
        cell.layer = layer;
        cell.expert = expert;
    }
}

}  // namespace moc::obs
