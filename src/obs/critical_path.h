#ifndef MOC_OBS_CRITICAL_PATH_H_
#define MOC_OBS_CRITICAL_PATH_H_

/**
 * @file
 * The flight-recorder analyzer: re-assembles TraceContext-stamped spans
 * (obs/trace.h) into the causal DAG of each cluster checkpoint generation
 * and walks its critical path.
 *
 * A generation's DAG is fixed by the checkpoint stack's structure
 * (src/ckpt/cluster_engine.h): every rank serializes, snapshots, and
 * persists its shards concurrently with the others, and the seal barrier
 * (PersistPipeline::FinishGeneration) waits for the last shard of the last
 * rank. The critical path therefore runs through exactly one rank — the
 * straggler — and decomposes the generation's wall time into
 * serialize → snapshot → persist → verify → seal segments plus the waits
 * between them. Effective segment durations are clipped to start after the
 * previous segment ends, so `sum(duration + wait)` over the path telescopes
 * to the measured wall time exactly (the acceptance check of
 * `moc_cli trace`).
 *
 * Input is either the live Tracer (CollectFlightSpans) or an exported
 * Chrome trace (ParseChromeTraceJson — the `args` object carries the
 * context; spans without one are ignored). Per-phase totals feed the
 * O_save attribution against Eq. 11-13 (src/core/overhead.h).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace moc::obs {

/** One context-stamped span, decoupled from the live Tracer's literals. */
struct FlightSpan {
    std::string name;
    std::string category;
    /** Checkpoint phase ("serialize", "snapshot", "persist", "verify",
        "seal", ...); empty for spans outside the checkpoint stack. */
    std::string phase;
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
    std::uint32_t tid = 0;
    std::uint64_t generation = 0;
    std::uint64_t iteration = 0;
    std::int32_t rank = -1;

    std::uint64_t end_ns() const { return start_ns + duration_ns; }
};

/** The live Tracer's merged rings as FlightSpans (all spans, any context). */
std::vector<FlightSpan> CollectFlightSpans();

/**
 * Parses a Chrome trace produced by ChromeTraceJson (obs/export.h) back
 * into spans. Only complete events (`"ph": "X"`) are returned; the
 * checkpoint context is read from the optional `args` object.
 * @throws std::invalid_argument on malformed JSON or a missing traceEvents
 *         array.
 */
std::vector<FlightSpan> ParseChromeTraceJson(const std::string& text);

/** One segment of a generation's critical path, in causal order. */
struct CriticalSegment {
    std::string phase;
    std::string name;
    std::int32_t rank = -1;
    std::uint64_t start_ns = 0;
    /** Effective duration: end minus max(start, previous segment's end). */
    std::uint64_t duration_ns = 0;
    /** Idle gap between the previous segment's end and this start. */
    std::uint64_t wait_ns = 0;
};

/** Per-rank phase totals and slack within one generation. */
struct RankProfile {
    std::int32_t rank = -1;
    std::uint64_t serialize_ns = 0;
    std::uint64_t snapshot_ns = 0;
    /** Persist + verify span time, summed over this rank's shards. */
    std::uint64_t persist_ns = 0;
    /** When this rank's last persist/verify span ended (absolute ns). */
    std::uint64_t finish_ns = 0;
    /** How much later the straggler finished than this rank. */
    std::uint64_t slack_ns = 0;
    /** Number of persist spans (shards physically written). */
    std::size_t shards = 0;
};

/** The reconstructed profile of one checkpoint generation. */
struct GenerationProfile {
    std::uint64_t generation = 0;
    std::uint64_t iteration = 0;
    /** Earliest span start in the generation (absolute ns). */
    std::uint64_t start_ns = 0;
    /** Latest span end minus earliest start. */
    std::uint64_t wall_ns = 0;
    /** Causal-order critical path (serialize → ... → seal). */
    std::vector<CriticalSegment> critical_path;
    /** Sum of effective durations + waits along the path. */
    std::uint64_t critical_ns = 0;
    /** Effective ns per phase on the critical path; waits under "wait". */
    std::map<std::string, std::uint64_t> phase_ns;
    /** Per-rank totals, ascending rank. */
    std::vector<RankProfile> ranks;
    /** Rank whose persist finished last (-1 when no rank-scoped spans). */
    std::int32_t straggler = -1;
};

struct FlightAnalysis {
    /** One profile per generation seen in the spans, ascending. */
    std::vector<GenerationProfile> generations;
};

/**
 * Groups @p spans by generation (spans with generation 0 are ignored) and
 * reconstructs each generation's critical path and per-rank profile.
 */
FlightAnalysis AnalyzeFlight(const std::vector<FlightSpan>& spans);

}  // namespace moc::obs

#endif  // MOC_OBS_CRITICAL_PATH_H_
