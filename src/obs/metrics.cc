#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace moc::obs {

void
Gauge::Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
    MOC_CHECK_ARG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                      std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                          bounds_.end(),
                  "histogram bounds must be strictly increasing");
}

void
Histogram::Observe(double value) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + value,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t>
Histogram::bucket_counts() const {
    std::vector<std::uint64_t> counts(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return counts;
}

void
Histogram::Reset() {
    for (auto& b : buckets_) {
        b.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

double
HistogramQuantile(const HistogramData& data, double q) {
    MOC_CHECK_ARG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    if (data.count == 0 || data.bucket_counts.empty()) {
        return 0.0;
    }
    const double target = q * static_cast<double>(data.count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
        const std::uint64_t in_bucket = data.bucket_counts[i];
        if (in_bucket == 0) {
            cumulative += in_bucket;
            continue;
        }
        const double below = static_cast<double>(cumulative);
        cumulative += in_bucket;
        if (static_cast<double>(cumulative) < target) {
            continue;
        }
        if (i >= data.bounds.size()) {
            // Overflow bucket: no finite upper edge to interpolate toward.
            return data.bounds.empty() ? 0.0 : data.bounds.back();
        }
        const double upper = data.bounds[i];
        const double lower = i == 0 ? 0.0 : data.bounds[i - 1];
        const double fraction =
            (target - below) / static_cast<double>(in_bucket);
        return lower + (upper - lower) * fraction;
    }
    return data.bounds.empty() ? 0.0 : data.bounds.back();
}

double
HistogramP50(const HistogramData& data) {
    return HistogramQuantile(data, 0.50);
}

double
HistogramP95(const HistogramData& data) {
    return HistogramQuantile(data, 0.95);
}

double
HistogramP99(const HistogramData& data) {
    return HistogramQuantile(data, 0.99);
}

std::vector<double>
ExponentialBuckets(double start, double factor, std::size_t count) {
    MOC_CHECK_ARG(start > 0.0 && factor > 1.0, "need start > 0 and factor > 1");
    std::vector<double> bounds;
    bounds.reserve(count);
    double bound = start;
    for (std::size_t i = 0; i < count; ++i) {
        bounds.push_back(bound);
        bound *= factor;
    }
    return bounds;
}

namespace {

/** Default buckets: 1 us .. ~69 s in x4 steps (durations in seconds). */
std::vector<double>
DefaultBuckets() {
    return ExponentialBuckets(1e-6, 4.0, 14);
}

}  // namespace

MetricsRegistry&
MetricsRegistry::Instance() {
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

Counter&
MetricsRegistry::GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    MOC_CHECK_ARG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric '" << name << "' already registered as another kind");
    auto& slot = counters_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge&
MetricsRegistry::GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    MOC_CHECK_ARG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric '" << name << "' already registered as another kind");
    auto& slot = gauges_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram&
MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mu_);
    MOC_CHECK_ARG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                  "metric '" << name << "' already registered as another kind");
    auto& slot = histograms_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Histogram>(bounds.empty() ? DefaultBuckets()
                                                          : std::move(bounds));
    }
    return *slot;
}

MetricsSnapshot
MetricsRegistry::Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    for (const auto& [name, counter] : counters_) {
        snap.counters[name] = counter->value();
    }
    for (const auto& [name, gauge] : gauges_) {
        snap.gauges[name] = gauge->value();
    }
    for (const auto& [name, histogram] : histograms_) {
        HistogramData data;
        data.bounds = histogram->bounds();
        data.bucket_counts = histogram->bucket_counts();
        data.count = histogram->count();
        data.sum = histogram->sum();
        snap.histograms[name] = std::move(data);
    }
    snap.experts = ExpertStatsRegistry::Instance().Snapshot();
    return snap;
}

void
MetricsRegistry::ResetAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) {
        counter->Reset();
    }
    for (auto& [name, gauge] : gauges_) {
        gauge->Reset();
    }
    for (auto& [name, histogram] : histograms_) {
        histogram->Reset();
    }
    ExpertStatsRegistry::Instance().Reset();
}

}  // namespace moc::obs
