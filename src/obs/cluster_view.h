#ifndef MOC_OBS_CLUSTER_VIEW_H_
#define MOC_OBS_CLUSTER_VIEW_H_

/**
 * @file
 * The coordinator-side cluster view: per-rank telemetry time series, a
 * cluster-wide straggler detector, and one merged health table that folds
 * live telemetry together with transport liveness (peer death causes).
 *
 * Ranks publish TelemetrySample records over the transport (kTelemetry
 * frames, encoded by net/telemetry.h — this header stays net-free so the
 * obs layer keeps its no-upward-dependency rule). The coordinator feeds
 * every decoded sample into ClusterAggregator::Observe(), which:
 *
 *   - keeps a bounded ring of recent samples per rank (the time series the
 *     report surfaces),
 *   - tracks completed phase durations per generation, and
 *   - flags a rank as a *straggler* while it sits in a phase N× longer
 *     than the cluster median of completed durations for that phase and
 *     generation — journaled as a kStraggler event *during* the run, not
 *     post-hoc, so an operator watching the journal sees the slow rank
 *     while it is still slow.
 *
 * Detection compares sender-side stamps only (sample.sent_ns minus
 * sample.phase_since_ns, both on the sender's clock), so it needs no clock
 * alignment to be correct; alignment (net/clock_sync.h) is for merging
 * timelines, not for detecting lag.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace moc::obs {

/**
 * One rank's periodic self-report. Pure data; the wire codec lives in
 * net/telemetry.h. Counter readings are *cumulative*, not deltas — a
 * dropped sample loses freshness, never data, which is what lets the
 * publisher coalesce instead of retrying under backpressure.
 */
struct TelemetrySample {
    std::int32_t rank = -1;
    std::uint64_t generation = 0;
    std::uint64_t iteration = 0;
    /** In-flight checkpoint phase ("persist", ...; empty = idle). */
    std::string phase;
    /** Sender clock (Tracer ns) when the current phase began (0 = idle). */
    std::int64_t phase_since_ns = 0;
    /** Sender clock (Tracer ns) when the sample was published. */
    std::int64_t sent_ns = 0;
    /** The sender's coordinator-relative clock offset at publish time. */
    std::int64_t clock_offset_ns = 0;
    /** Selected cumulative counter readings (bounded; name, value). */
    std::vector<std::pair<std::string, double>> counters;
};

/** What this process is doing right now, for the telemetry sampler. */
struct RankActivity {
    std::string phase;  ///< empty = idle
    std::uint64_t generation = 0;
    std::uint64_t iteration = 0;
    std::int64_t since_ns = 0;  ///< Tracer ns at the last phase change
};

/**
 * Publishes the calling process's current checkpoint activity. TraceContext
 * is thread-local and invisible to the sampler thread, so drivers call this
 * explicitly at phase boundaries (phase = nullptr or "" marks idle).
 */
void SetRankActivity(const char* phase, std::uint64_t generation,
                     std::uint64_t iteration);

/** The last published activity (since_ns = 0 before any publish). */
RankActivity GetRankActivity();

/** Tunables for the cluster-median straggler detector. */
struct StragglerPolicy {
    /** Flag when elapsed > ratio x median completed duration. */
    double ratio = 4.0;
    /** ...and elapsed exceeds this floor (debounces microsecond phases). */
    double min_s = 0.05;
    /** ...and at least this many peers completed the phase this gen. */
    std::size_t min_peers = 2;
};

/**
 * Aggregates rank telemetry into one cluster health view. Thread-safe; the
 * coordinator's transport reader and its driver loop both touch it.
 */
class ClusterAggregator {
  public:
    /** Per-rank ring capacity; older samples fall off. */
    static constexpr std::size_t kRingCapacity = 256;

    /** One rank's row in the merged health table. */
    struct RankHealth {
        std::int32_t rank = -1;
        bool alive = true;
        /** Transport-declared death cause ("eof", "heartbeat_timeout"). */
        std::string death_cause;
        std::string phase;  ///< last reported in-flight phase
        std::uint64_t generation = 0;
        std::uint64_t iteration = 0;
        /** Seconds in the current phase as of the last sample (sender clock). */
        double elapsed_in_phase_s = 0.0;
        /** Median completed duration of that phase this gen, or < 0. */
        double cluster_median_s = -1.0;
        /** cluster_median_s - elapsed_in_phase_s; negative = behind. */
        double slack_s = 0.0;
        /** Currently flagged as a straggler. */
        bool straggler = false;
        std::uint64_t samples = 0;  ///< samples observed from this rank
        std::int64_t last_heard_ns = 0;  ///< local clock at last sample
    };

    static ClusterAggregator& Instance();

    /** Replaces the detector tunables (call before the run starts). */
    void SetPolicy(const StragglerPolicy& policy);

    /**
     * Folds one decoded sample in; @p local_now_ns is the receiver's clock
     * at decode time. Journals kStraggler (once per rank and generation)
     * when the detector fires, and bumps `obs.cluster.stragglers`.
     */
    void Observe(const TelemetrySample& sample, std::int64_t local_now_ns);

    /**
     * Folds a transport death verdict into the health view. Not permanent:
     * a later telemetry sample from the rank (a respawned incarnation that
     * rejoined) flips it back to alive, clears the cause, and journals one
     * `rejoin` resurrection event per death/rejoin cycle
     * (`obs.cluster.resurrections`).
     */
    void ObservePeerDeath(std::int32_t rank, const std::string& cause);

    /** The merged health table, one row per rank ever heard from. */
    std::vector<RankHealth> Health() const;

    /** Recent samples from @p rank, oldest first (empty if unknown). */
    std::vector<TelemetrySample> Series(std::int32_t rank) const;

    /** Total samples observed across all ranks. */
    std::uint64_t samples() const;

    /** Ranks currently flagged as stragglers. */
    std::vector<std::int32_t> Stragglers() const;

    /** Forgets everything (tests and re-runs). */
    void Reset();

  private:
    struct RankState {
        std::deque<TelemetrySample> ring;
        TelemetrySample last;
        bool alive = true;
        std::string death_cause;
        std::int64_t last_heard_ns = 0;
        std::uint64_t samples = 0;
        bool straggler = false;
        /** Set by a death, cleared by the resurrecting sample — so each
            death/rejoin cycle journals exactly one rejoin event. */
        bool resurrection_pending = false;
    };

    ClusterAggregator() = default;

    /** Runs the detector for @p state's latest sample. Caller holds mu_. */
    void DetectStraggler(RankState& state);

    /** Median of @p durations_s (unsorted copy in, < 0 when empty). */
    static double Median(std::vector<double> durations_s);

    mutable std::mutex mu_;
    StragglerPolicy policy_;
    std::map<std::int32_t, RankState> ranks_;
    /** Completed durations, keyed by (generation, phase). */
    std::map<std::pair<std::uint64_t, std::string>, std::vector<double>>
        completed_s_;
    /** (generation, rank) pairs already journaled, to flag once. */
    std::map<std::pair<std::uint64_t, std::int32_t>, bool> flagged_;
    std::uint64_t total_samples_ = 0;
};

}  // namespace moc::obs

#endif  // MOC_OBS_CLUSTER_VIEW_H_
