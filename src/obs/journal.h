#ifndef MOC_OBS_JOURNAL_H_
#define MOC_OBS_JOURNAL_H_

/**
 * @file
 * The structured event journal: a process-wide, append-only buffer of typed
 * fault-tolerance events (checkpoints, snapshot/persist writes, faults,
 * recoveries, Dynamic-K transitions).
 *
 * Where the metrics registry answers "how much, in total", the journal
 * answers "what happened, when": every record is stamped with a sequence
 * number, wall-clock seconds since process start, the training iteration,
 * and the quantities the paper reasons about (bytes moved, PLT, K). The
 * journal is exported as JSONL via `--events-out` (see obs/export.h) and
 * read back by `moc_cli report` and the round-trip tests via
 * ParseEventsJsonl().
 *
 * Events are emitted per checkpoint / fault, not per token, so a mutex-
 * protected vector is plenty; a generous cap bounds memory on pathological
 * runs (overflow increments dropped() instead of growing).
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace moc::obs {

/** The typed event vocabulary (docs/OBSERVABILITY.md catalogues each). */
enum class EventKind : std::uint8_t {
    kCkptBegin,     ///< a checkpoint event started
    kCkptEnd,       ///< ...and finished (bytes = snapshot + persist total)
    kSnapshot,      ///< one unit written to node memory (detail = store key)
    kPersist,       ///< one unit written to persistent storage
    kFault,         ///< node failures injected (detail = "nodes=...")
    kRecoveryBegin, ///< recovery planning/restore started
    kRecoveryEnd,   ///< model restored (iteration = restart point)
    kDynamicKBump,  ///< Dynamic-K escalated (k = new K_snapshot)
    kStorageFault,  ///< storage-fault window armed/disarmed, or a persist
                    ///< shard write failed (detail says which)
    kDegradedRecovery, ///< a key restored from older bytes than planned, or
                       ///< the restart generation fell back (detail = why)
    kClusterSeal,      ///< a cluster checkpoint generation finished its
                       ///< commit protocol (detail = sealed/unsealed + shard
                       ///< counts; bytes = physical bytes written)
    kStall,            ///< the stall watchdog (obs/watchdog.h) caught an
                       ///< in-flight checkpoint op over its phase deadline
                       ///< (scope = rank, detail = phase/key/budget/elapsed)
    kPeerDeath,        ///< the transport declared a peer dead — connection
                       ///< EOF or heartbeat timeout (scope = peer when it is
                       ///< a rank, detail = cause/silence/epoch; see
                       ///< docs/TRANSPORT.md)
    kStraggler,        ///< the cluster aggregator (obs/cluster_view.h)
                       ///< flagged one rank far behind the cluster median in
                       ///< its current phase (scope = rank, detail =
                       ///< phase/elapsed/median)
    kMembershipChange, ///< the membership table (ckpt/membership.h) moved a
                       ///< rank between states (scope = rank, detail =
                       ///< from->to + cause/epoch + membership version)
    kRejoin,           ///< a previously dead rank was heard from again under
                       ///< a fresh epoch — admitted by the membership table
                       ///< or resurrected in the cluster health view
                       ///< (scope = rank, detail = epoch/incarnation)
};

/** Stable wire name of @p kind ("ckpt_begin", "snapshot", ...). */
const char* EventKindName(EventKind kind);

/** Inverse of EventKindName; throws std::invalid_argument on junk. */
EventKind EventKindFromName(const std::string& name);

/** Scope value meaning "the whole job" rather than one node. */
inline constexpr std::int64_t kGlobalScope = -1;

/** One journal record. Fields that don't apply to a kind keep defaults. */
struct JournalEvent {
    EventKind kind = EventKind::kSnapshot;
    /** Append order, assigned by the journal. */
    std::uint64_t seq = 0;
    /** Wall-clock seconds since process start, stamped on Append. */
    double wall_s = 0.0;
    /** Training iteration the event refers to. */
    std::uint64_t iteration = 0;
    /** Node id the event is scoped to, or kGlobalScope. */
    std::int64_t scope = kGlobalScope;
    /** Cluster checkpoint generation (0 = none); stamped on Append from the
        thread's TraceContext when the caller leaves it 0. */
    std::uint64_t gen = 0;
    /** Bytes moved by the event (0 when not applicable). */
    std::uint64_t bytes = 0;
    /** Ledger PLT at the event, or a negative value for "not sampled". */
    double plt = -1.0;
    /** K_snapshot in force, 0 for "not sampled". */
    std::uint64_t k = 0;
    /** Cluster role the event came from; empty in-process, filled by the
        multi-file merge (obs/merge.h) so a cluster journal stays
        attributable per process. The explicit initializer keeps existing
        designated-initializer call sites warning-free. */
    std::string role{};
    /** Free-form context: store key, failed node list, ... */
    std::string detail;
};

/**
 * Process-wide append-only event buffer.
 */
class EventJournal {
  public:
    /** Hard cap on buffered events; appends beyond it are counted, dropped. */
    static constexpr std::size_t kMaxEvents = 1u << 20;

    static EventJournal& Instance();

    /**
     * Stamps seq, wall_s, and (from the calling thread's TraceContext, when
     * the caller left them defaulted) gen and scope on @p event, then
     * buffers it.
     * @return the assigned sequence number.
     */
    std::uint64_t Append(JournalEvent event);

    /** Copy of every buffered event, in append order. */
    std::vector<JournalEvent> Collect() const;

    std::size_t size() const;

    /** Events discarded because the buffer hit kMaxEvents. */
    std::uint64_t dropped() const;

    /** Empties the buffer and restarts sequence numbering (for re-runs). */
    void Clear();

  private:
    EventJournal() = default;

    mutable std::mutex mu_;
    std::vector<JournalEvent> events_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * Nanoseconds (Tracer clock) latched at the journal's first append — the
 * zero point of every event's wall_s. Exported in the JSONL meta record as
 * `clock_epoch_ns` so a merge can rebase relative stamps onto an absolute
 * (and, with `clock_offset_ns`, coordinator-aligned) timeline.
 */
std::uint64_t JournalEpochNs();

/**
 * The journal as JSON Lines: one run-metadata header record
 * (`"type": "meta"`), then one record per event in append order.
 */
std::string EventsJsonl();

/** Writes EventsJsonl() to @p path, creating parent directories. */
bool WriteEventsJsonl(const std::string& path);

/**
 * Parses JSONL produced by EventsJsonl back into events. Blank lines and
 * `"type": "meta"` records are skipped.
 * @throws std::invalid_argument on malformed lines or unknown event types.
 */
std::vector<JournalEvent> ParseEventsJsonl(const std::string& text);

}  // namespace moc::obs

#endif  // MOC_OBS_JOURNAL_H_
