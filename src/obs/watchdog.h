#ifndef MOC_OBS_WATCHDOG_H_
#define MOC_OBS_WATCHDOG_H_

/**
 * @file
 * The stall watchdog: a background poller that watches in-flight checkpoint
 * operations against per-phase deadline budgets.
 *
 * Without it, a hung or slow shard write (a FaultyStore latency spike, a
 * misbehaving filesystem) is invisible until the generation simply never
 * seals — the seal barrier waits forever and nothing is logged. The
 * watchdog turns that silence into signal: each persist/seal op registers
 * with its TraceContext and a budget; a poll thread fires once per overrun
 * op, appending a `stall` journal event (obs/journal.h) scoped to the
 * stalled rank and bumping the `obs.stall.*` metrics. The op keeps running
 * — detection, not cancellation — and its total overrun is recorded on
 * completion.
 *
 * Use the RAII `WatchdogOp` at call sites; it is a no-op when the watchdog
 * is absent or the budget is unset, so instrumented paths cost nothing in
 * the default configuration.
 */

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/trace.h"

namespace moc::obs {

/** Background deadline monitor for in-flight checkpoint ops. */
class StallWatchdog {
  public:
    /** @param poll_interval_s how often the poller scans in-flight ops. */
    explicit StallWatchdog(double poll_interval_s = 0.002);

    /** Joins the poll thread; in-flight ops are simply forgotten. */
    ~StallWatchdog();

    StallWatchdog(const StallWatchdog&) = delete;
    StallWatchdog& operator=(const StallWatchdog&) = delete;

    /**
     * Registers an in-flight op. @p phase must be a string literal;
     * @p detail names the op in the stall event (e.g. the store key).
     * @return a token for OpEnd.
     */
    std::uint64_t OpBegin(const char* phase, double budget_s,
                          const TraceContext& ctx, std::string detail);

    /** Completes the op; records its overrun (if any) in the histogram. */
    void OpEnd(std::uint64_t id);

    /** Stalls detected so far (monotonic; for tests). */
    std::uint64_t stalls_fired() const;

  private:
    struct Op {
        const char* phase = "";
        double budget_s = 0.0;
        std::uint64_t start_ns = 0;
        TraceContext ctx;
        std::string detail;
        bool fired = false;  ///< stall already journaled for this op
    };

    void PollLoop();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::map<std::uint64_t, Op> ops_;
    std::uint64_t next_id_ = 1;
    std::uint64_t fired_total_ = 0;
    double poll_interval_s_;
    std::thread thread_;
};

/**
 * RAII registration of one op with an optional watchdog. No-op when
 * @p watchdog is null or @p budget_s is not positive.
 */
class WatchdogOp {
  public:
    WatchdogOp(StallWatchdog* watchdog, const char* phase, double budget_s,
               const TraceContext& ctx, std::string detail)
        : watchdog_(budget_s > 0.0 ? watchdog : nullptr),
          id_(watchdog_ != nullptr
                  ? watchdog_->OpBegin(phase, budget_s, ctx, std::move(detail))
                  : 0) {}

    ~WatchdogOp() {
        if (watchdog_ != nullptr) {
            watchdog_->OpEnd(id_);
        }
    }

    WatchdogOp(const WatchdogOp&) = delete;
    WatchdogOp& operator=(const WatchdogOp&) = delete;

  private:
    StallWatchdog* watchdog_;
    std::uint64_t id_;
};

}  // namespace moc::obs

#endif  // MOC_OBS_WATCHDOG_H_
