#include "obs/timeseries.h"

#include <sstream>

#include "obs/cluster_view.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace moc::obs {

namespace {

/** One point as a JSON object (shared by the window and JSONL forms). */
void
AppendPointJson(std::ostringstream& out, const IterationPoint& p) {
    out << "{\"iteration\": " << p.iteration << ", \"t_s\": "
        << JsonNumber(p.t_s) << ", \"iter_seconds\": "
        << JsonNumber(p.iter_seconds) << ", \"bytes_persisted\": "
        << p.bytes_persisted << ", \"bytes_saved\": " << p.bytes_saved
        << ", \"plt\": " << JsonNumber(p.plt) << ", \"live_ranks\": "
        << p.live_ranks << ", \"stragglers\": " << p.stragglers << "}";
}

}  // namespace

TimeSeriesRing&
TimeSeriesRing::Instance() {
    static TimeSeriesRing ring;
    return ring;
}

void
TimeSeriesRing::SetCapacity(std::size_t capacity) {
    const std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity == 0 ? 1 : capacity;
    while (ring_.size() > capacity_) {
        ring_.pop_front();
    }
}

void
TimeSeriesRing::Append(const IterationPoint& point) {
    static Counter& points =
        MetricsRegistry::Instance().GetCounter("obs.series.points");
    const std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(point);
    if (ring_.size() > capacity_) {
        ring_.pop_front();
    }
    ++total_;
    points.Add();
}

std::vector<IterationPoint>
TimeSeriesRing::Window(std::size_t last_n) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::size_t n = last_n == 0 || last_n > ring_.size() ? ring_.size()
                                                               : last_n;
    return {ring_.end() - static_cast<std::ptrdiff_t>(n), ring_.end()};
}

std::uint64_t
TimeSeriesRing::total() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

std::string
TimeSeriesRing::Json(std::size_t last_n) const {
    const std::vector<IterationPoint> window = Window(last_n);
    std::ostringstream out;
    out << "{\"schema\": \"moc-series/1\", \"total\": " << total()
        << ", \"points\": [";
    for (std::size_t i = 0; i < window.size(); ++i) {
        if (i > 0) {
            out << ", ";
        }
        AppendPointJson(out, window[i]);
    }
    out << "]}\n";
    return out.str();
}

std::string
TimeSeriesRing::Jsonl() const {
    const std::vector<IterationPoint> window = Window(0);
    std::ostringstream out;
    for (const IterationPoint& p : window) {
        AppendPointJson(out, p);
        out << "\n";
    }
    return out.str();
}

void
TimeSeriesRing::Reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    total_ = 0;
    capacity_ = kDefaultCapacity;
}

IterationPoint
CapturePoint(std::uint64_t iteration, double iter_seconds) {
    MetricsRegistry& registry = MetricsRegistry::Instance();
    static Counter& ckpt_bytes = registry.GetCounter("ckpt.persist_bytes");
    static Counter& cluster_bytes =
        registry.GetCounter("cluster.bytes_written");
    static Counter& deduped = registry.GetCounter("cluster.bytes_deduped");
    static Counter& delta_saved =
        registry.GetCounter("cluster.delta.bytes_saved");
    static Gauge& plt = registry.GetGauge("ckpt.plt");

    IterationPoint point;
    point.iteration = iteration;
    point.t_s = static_cast<double>(Tracer::NowNs()) / 1e9;
    point.iter_seconds = iter_seconds;
    point.bytes_persisted = ckpt_bytes.value() + cluster_bytes.value();
    point.bytes_saved = deduped.value() + delta_saved.value();
    // The gauge rests at 0 before the first checkpoint computes a ledger
    // PLT; report "unknown" rather than a fake perfect score.
    const double plt_now = plt.value();
    point.plt = plt_now > 0.0 ? plt_now : -1.0;

    std::uint64_t alive = 0;
    std::uint64_t straggling = 0;
    const auto health = ClusterAggregator::Instance().Health();
    for (const auto& row : health) {
        alive += row.alive ? 1 : 0;
        straggling += row.straggler ? 1 : 0;
    }
    // No cluster rows = a single-process run: the process itself is alive.
    point.live_ranks = health.empty() ? 1 : alive;
    point.stragglers = straggling;
    return point;
}

void
SampleIteration(std::uint64_t iteration, double iter_seconds) {
    TimeSeriesRing::Instance().Append(CapturePoint(iteration, iter_seconds));
}

}  // namespace moc::obs
