#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace moc::obs {

namespace {

/** The calling thread's installed context (default = inactive). */
TraceContext&
ThreadContext() {
    thread_local TraceContext ctx;
    return ctx;
}

}  // namespace

const TraceContext&
CurrentTraceContext() {
    return ThreadContext();
}

TraceContextScope::TraceContextScope(const TraceContext& ctx)
    : saved_(ThreadContext()) {
    ThreadContext() = ctx;
}

TraceContextScope::~TraceContextScope() {
    ThreadContext() = saved_;
}

TraceRing::TraceRing(std::size_t capacity, std::uint32_t tid)
    : capacity_(capacity), tid_(tid) {
    events_.reserve(capacity_);
}

void
TraceRing::Push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < capacity_) {
        events_.push_back(event);
        return;
    }
    full_ = true;
    ++dropped_;
    events_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    // Surfaced by `moc_cli report`: a nonzero value means the exported
    // trace is a suffix of what actually happened.
    static Counter& dropped_ctr =
        MetricsRegistry::Instance().GetCounter("obs.trace.dropped");
    dropped_ctr.Add();
}

std::vector<TraceEvent>
TraceRing::Events() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!full_) {
        return events_;
    }
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    out.insert(out.end(), events_.begin() + static_cast<long>(head_),
               events_.end());
    out.insert(out.end(), events_.begin(),
               events_.begin() + static_cast<long>(head_));
    return out;
}

std::uint64_t
TraceRing::dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

void
TraceRing::Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    head_ = 0;
    full_ = false;
    dropped_ = 0;
}

Tracer&
Tracer::Instance() {
    static Tracer* tracer = new Tracer();
    return *tracer;
}

TraceRing&
Tracer::ThreadRing() {
    thread_local TraceRing* ring = nullptr;
    if (ring == nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        const auto tid = static_cast<std::uint32_t>(rings_.size());
        rings_.push_back(std::make_unique<TraceRing>(kRingCapacity, tid));
        ring = rings_.back().get();
    }
    return *ring;
}

void
Tracer::Record(const TraceEvent& event) {
    TraceEvent stamped = event;
    TraceRing& ring = ThreadRing();
    stamped.tid = ring.tid();
    ring.Push(stamped);
}

std::vector<TraceEvent>
Tracer::Collect() const {
    std::vector<const TraceRing*> rings;
    {
        std::lock_guard<std::mutex> lock(mu_);
        rings.reserve(rings_.size());
        for (const auto& ring : rings_) {
            rings.push_back(ring.get());
        }
    }
    std::vector<TraceEvent> events;
    for (const TraceRing* ring : rings) {
        const auto part = ring->Events();
        events.insert(events.end(), part.begin(), part.end());
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return a.start_ns < b.start_ns;
              });
    return events;
}

std::uint64_t
Tracer::TotalDropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t dropped = 0;
    for (const auto& ring : rings_) {
        dropped += ring->dropped();
    }
    return dropped;
}

void
Tracer::Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
        ring->Clear();
    }
}

std::uint64_t
Tracer::NowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

TraceSpan::~TraceSpan() {
    if (!active_) {
        return;
    }
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.start_ns = start_ns_;
    event.duration_ns = Tracer::NowNs() - start_ns_;
    const TraceContext& ctx = CurrentTraceContext();
    event.generation = ctx.generation;
    event.iteration = ctx.iteration;
    event.rank = ctx.rank;
    event.phase = ctx.phase;
    Tracer::Instance().Record(event);
}

}  // namespace moc::obs
