#include "obs/critical_path.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "obs/trace.h"
#include "util/json.h"

namespace moc::obs {

namespace {

/** Latest-ending span in @p spans matching @p pred, or nullptr. */
template <typename Pred>
const FlightSpan*
LatestEnding(const std::vector<FlightSpan>& spans, Pred pred) {
    const FlightSpan* best = nullptr;
    for (const FlightSpan& s : spans) {
        if (!pred(s)) {
            continue;
        }
        if (best == nullptr || s.end_ns() > best->end_ns()) {
            best = &s;
        }
    }
    return best;
}

/**
 * The causal chain of one generation, earliest first. The DAG's join
 * structure (all ranks' persists → seal) means the path runs through the
 * last-finishing persist/verify; everything upstream of it is sequential
 * on that rank's lane.
 */
std::vector<const FlightSpan*>
CriticalChain(const std::vector<FlightSpan>& spans) {
    std::vector<const FlightSpan*> chain;
    const FlightSpan* seal =
        LatestEnding(spans, [](const FlightSpan& s) { return s.phase == "seal"; });
    // The last persist-side span to finish gates the seal barrier.
    const FlightSpan* last_write = LatestEnding(spans, [&](const FlightSpan& s) {
        return (s.phase == "persist" || s.phase == "verify") &&
               (seal == nullptr || s.start_ns <= seal->end_ns());
    });
    if (last_write != nullptr && last_write->phase == "verify") {
        // The verify readback follows its shard's write on the same worker
        // thread; pull the write in so both segments show on the path.
        const FlightSpan* write =
            LatestEnding(spans, [&](const FlightSpan& s) {
                return s.phase == "persist" && s.tid == last_write->tid &&
                       s.end_ns() <= last_write->end_ns();
            });
        if (write != nullptr) {
            chain.push_back(write);
        }
    }
    if (last_write != nullptr) {
        chain.push_back(last_write);
    }
    const std::int32_t rank = last_write != nullptr ? last_write->rank : -1;
    if (rank >= 0) {
        // Upstream of the persist: this rank's snapshot and serialize.
        for (const char* phase : {"snapshot", "serialize"}) {
            const FlightSpan* up = LatestEnding(spans, [&](const FlightSpan& s) {
                return s.phase == phase && s.rank == rank &&
                       (chain.empty() ||
                        s.start_ns <= chain.front()->end_ns());
            });
            if (up != nullptr) {
                chain.insert(chain.begin(), up);
            }
        }
    }
    if (seal != nullptr) {
        chain.push_back(seal);
    }
    if (chain.empty()) {
        // Degenerate stream (e.g. only a restore span): fall back to the
        // latest-ending span so the path is never empty.
        const FlightSpan* any =
            LatestEnding(spans, [](const FlightSpan&) { return true; });
        if (any != nullptr) {
            chain.push_back(any);
        }
    }
    return chain;
}

GenerationProfile
ProfileGeneration(std::uint64_t generation,
                  const std::vector<FlightSpan>& spans) {
    GenerationProfile profile;
    profile.generation = generation;

    std::uint64_t min_start = spans.front().start_ns;
    std::uint64_t max_end = spans.front().end_ns();
    for (const FlightSpan& s : spans) {
        min_start = std::min(min_start, s.start_ns);
        max_end = std::max(max_end, s.end_ns());
        if (profile.iteration == 0) {
            profile.iteration = s.iteration;
        }
    }
    profile.start_ns = min_start;
    profile.wall_ns = max_end - min_start;

    // Per-rank phase totals.
    std::map<std::int32_t, RankProfile> ranks;
    for (const FlightSpan& s : spans) {
        if (s.rank < 0) {
            continue;
        }
        RankProfile& r = ranks[s.rank];
        r.rank = s.rank;
        if (s.phase == "serialize") {
            r.serialize_ns += s.duration_ns;
        } else if (s.phase == "snapshot") {
            r.snapshot_ns += s.duration_ns;
        } else if (s.phase == "persist" || s.phase == "verify") {
            r.persist_ns += s.duration_ns;
            r.finish_ns = std::max(r.finish_ns, s.end_ns());
            if (s.phase == "persist") {
                ++r.shards;
            }
        }
    }
    std::uint64_t straggler_finish = 0;
    for (const auto& [rank, r] : ranks) {
        if (r.finish_ns > straggler_finish) {
            straggler_finish = r.finish_ns;
            profile.straggler = rank;
        }
    }
    for (auto& [rank, r] : ranks) {
        r.slack_ns =
            straggler_finish > r.finish_ns ? straggler_finish - r.finish_ns : 0;
        profile.ranks.push_back(r);
    }

    // Walk the chain forward, clipping overlaps so segments + waits
    // telescope from the generation start to the last segment's end.
    const auto chain = CriticalChain(spans);
    std::uint64_t cursor = min_start;
    for (const FlightSpan* s : chain) {
        CriticalSegment seg;
        seg.phase = s->phase.empty() ? s->name : s->phase;
        seg.name = s->name;
        seg.rank = s->rank;
        seg.start_ns = s->start_ns;
        seg.wait_ns = s->start_ns > cursor ? s->start_ns - cursor : 0;
        const std::uint64_t eff_start = std::max(s->start_ns, cursor);
        seg.duration_ns =
            s->end_ns() > eff_start ? s->end_ns() - eff_start : 0;
        cursor = std::max(cursor, s->end_ns());
        profile.critical_ns += seg.wait_ns + seg.duration_ns;
        profile.phase_ns[seg.phase] += seg.duration_ns;
        if (seg.wait_ns > 0) {
            profile.phase_ns["wait"] += seg.wait_ns;
        }
        profile.critical_path.push_back(std::move(seg));
    }
    return profile;
}

}  // namespace

std::vector<FlightSpan>
CollectFlightSpans() {
    const auto events = Tracer::Instance().Collect();
    std::vector<FlightSpan> spans;
    spans.reserve(events.size());
    for (const TraceEvent& e : events) {
        FlightSpan s;
        s.name = e.name;
        s.category = e.category;
        s.phase = e.phase;
        s.start_ns = e.start_ns;
        s.duration_ns = e.duration_ns;
        s.tid = e.tid;
        s.generation = e.generation;
        s.iteration = e.iteration;
        s.rank = e.rank;
        spans.push_back(std::move(s));
    }
    return spans;
}

std::vector<FlightSpan>
ParseChromeTraceJson(const std::string& text) {
    const json::Value doc = json::Parse(text);
    const json::Value* events = doc.Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
        throw std::invalid_argument(
            "chrome trace: missing traceEvents array");
    }
    std::vector<FlightSpan> spans;
    spans.reserve(events->AsArray().size());
    for (const json::Value& rec : events->AsArray()) {
        if (rec.StringOr("ph", "") != "X") {
            continue;
        }
        FlightSpan s;
        s.name = rec.StringOr("name", "");
        s.category = rec.StringOr("cat", "");
        s.start_ns = static_cast<std::uint64_t>(
            std::llround(rec.NumberOr("ts", 0.0) * 1000.0));
        s.duration_ns = static_cast<std::uint64_t>(
            std::llround(rec.NumberOr("dur", 0.0) * 1000.0));
        s.tid = static_cast<std::uint32_t>(rec.NumberOr("tid", 0.0));
        if (const json::Value* args = rec.Find("args");
            args != nullptr && args->is_object()) {
            s.generation =
                static_cast<std::uint64_t>(args->NumberOr("gen", 0.0));
            s.iteration =
                static_cast<std::uint64_t>(args->NumberOr("iter", 0.0));
            s.rank = static_cast<std::int32_t>(args->NumberOr("rank", -1.0));
            s.phase = args->StringOr("phase", "");
        }
        spans.push_back(std::move(s));
    }
    return spans;
}

FlightAnalysis
AnalyzeFlight(const std::vector<FlightSpan>& spans) {
    std::map<std::uint64_t, std::vector<FlightSpan>> by_generation;
    for (const FlightSpan& s : spans) {
        if (s.generation != 0) {
            by_generation[s.generation].push_back(s);
        }
    }
    FlightAnalysis analysis;
    analysis.generations.reserve(by_generation.size());
    for (const auto& [generation, gen_spans] : by_generation) {
        analysis.generations.push_back(
            ProfileGeneration(generation, gen_spans));
    }
    return analysis;
}

}  // namespace moc::obs
