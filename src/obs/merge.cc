#include "obs/merge.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/export.h"
#include "obs/run_meta.h"
#include "util/json.h"

namespace moc::obs {

namespace {

/** Fractional microseconds with nanosecond digits (see obs/export.cc). */
std::string
TraceMicros(std::uint64_t ns) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    return buf;
}

}  // namespace

std::string
RoleFromFilename(const std::string& path) {
    std::size_t start = path.find_last_of("/\\");
    start = start == std::string::npos ? 0 : start + 1;
    std::size_t end = path.find('.', start);
    if (end == std::string::npos) {
        end = path.size();
    }
    return path.substr(start, end - start);
}

RoleEvents
ParseRoleEventsJsonl(const std::string& text,
                     const std::string& fallback_role) {
    RoleEvents out;
    out.role = fallback_role;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;
        }
        json::Value record;
        try {
            record = json::Parse(line);
        } catch (const std::invalid_argument&) {
            // The torn tail of a killed process, or stray output. Count it
            // and keep going: partial journals are the whole point.
            ++out.skipped_lines;
            continue;
        }
        std::string type;
        try {
            type = record.At("type").AsString();
        } catch (const std::invalid_argument&) {
            ++out.skipped_lines;
            continue;
        }
        if (type == "meta") {
            out.has_meta = true;
            const std::string meta_role = record.StringOr("role", "");
            if (!meta_role.empty()) {
                out.role = meta_role;
            }
            out.clock_offset_ns = static_cast<std::int64_t>(
                record.NumberOr("clock_offset_ns", 0.0));
            out.clock_epoch_ns = static_cast<std::int64_t>(
                record.NumberOr("clock_epoch_ns", 0.0));
            continue;
        }
        JournalEvent e;
        try {
            e.kind = EventKindFromName(type);
        } catch (const std::invalid_argument&) {
            ++out.skipped_lines;
            continue;
        }
        e.seq = static_cast<std::uint64_t>(record.NumberOr("seq", 0.0));
        e.wall_s = record.NumberOr("t", 0.0);
        e.iteration =
            static_cast<std::uint64_t>(record.NumberOr("iter", 0.0));
        e.scope = static_cast<std::int64_t>(
            record.NumberOr("scope", static_cast<double>(kGlobalScope)));
        e.gen = static_cast<std::uint64_t>(record.NumberOr("gen", 0.0));
        e.bytes = static_cast<std::uint64_t>(record.NumberOr("bytes", 0.0));
        e.plt = record.NumberOr("plt", -1.0);
        e.k = static_cast<std::uint64_t>(record.NumberOr("k", 0.0));
        e.detail = record.StringOr("detail", "");
        e.role = record.StringOr("role", "");
        out.events.push_back(std::move(e));
    }
    return out;
}

MergedEvents
MergeRoleEvents(const std::vector<RoleEvents>& inputs) {
    MergedEvents merged;
    merged.roles = inputs.size();
    for (const RoleEvents& input : inputs) {
        merged.skipped_lines += input.skipped_lines;
        for (const JournalEvent& e : input.events) {
            ClusterEvent ce;
            ce.event = e;
            if (ce.event.role.empty()) {
                ce.event.role = input.role;
            }
            // Relative stamp -> local absolute -> coordinator clock.
            ce.abs_ns = input.clock_epoch_ns +
                        static_cast<std::int64_t>(
                            std::llround(e.wall_s * 1e9)) +
                        input.clock_offset_ns;
            merged.events.push_back(std::move(ce));
        }
    }
    std::sort(merged.events.begin(), merged.events.end(),
              [](const ClusterEvent& a, const ClusterEvent& b) {
                  if (a.abs_ns != b.abs_ns) {
                      return a.abs_ns < b.abs_ns;
                  }
                  if (a.event.role != b.event.role) {
                      return a.event.role < b.event.role;
                  }
                  return a.event.seq < b.event.seq;
              });
    if (!merged.events.empty()) {
        merged.base_ns = merged.events.front().abs_ns;
    }
    return merged;
}

std::string
ClusterEventsJsonl(const MergedEvents& merged) {
    std::ostringstream out;
    out << "{\"type\": \"meta\", \"schema\": \"moc-cluster/1\", \"roles\": "
        << merged.roles << ", \"skipped_lines\": " << merged.skipped_lines
        << ", \"base_ns\": " << merged.base_ns
        << ", \"events\": " << merged.events.size() << "}\n";
    for (const ClusterEvent& ce : merged.events) {
        const JournalEvent& e = ce.event;
        const double t =
            static_cast<double>(ce.abs_ns - merged.base_ns) / 1e9;
        out << "{\"type\": \"" << EventKindName(e.kind) << "\", \"seq\": "
            << e.seq << ", \"t\": " << JsonNumber(t)
            << ", \"iter\": " << e.iteration << ", \"scope\": " << e.scope
            << ", \"gen\": " << e.gen << ", \"bytes\": " << e.bytes
            << ", \"plt\": " << JsonNumber(e.plt) << ", \"k\": " << e.k
            << ", \"detail\": \"" << JsonEscape(e.detail)
            << "\", \"role\": \"" << JsonEscape(e.role) << "\"}\n";
    }
    return out.str();
}

RoleSpans
ParseRoleTrace(const std::string& text, const std::string& fallback_role) {
    RoleSpans out;
    out.role = fallback_role;
    out.spans = ParseChromeTraceJson(text);  // throws on malformed JSON
    const json::Value doc = json::Parse(text);
    if (const json::Value* meta = doc.Find("metadata")) {
        const std::string meta_role = meta->StringOr("role", "");
        if (!meta_role.empty()) {
            out.role = meta_role;
        }
        out.clock_offset_ns = static_cast<std::int64_t>(
            meta->NumberOr("clock_offset_ns", 0.0));
    }
    return out;
}

std::vector<FlightSpan>
MergeRoleSpans(const std::vector<RoleSpans>& inputs) {
    std::vector<FlightSpan> merged;
    for (const RoleSpans& input : inputs) {
        for (FlightSpan span : input.spans) {
            span.start_ns = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(span.start_ns) +
                input.clock_offset_ns);
            merged.push_back(std::move(span));
        }
    }
    return merged;
}

std::string
MergedChromeTraceJson(const std::vector<RoleSpans>& inputs) {
    // Re-zero to the earliest rebased span so the merged trace opens at
    // t=0 instead of some process's steady-clock uptime.
    std::int64_t base = 0;
    bool have_base = false;
    for (const RoleSpans& input : inputs) {
        for (const FlightSpan& span : input.spans) {
            const std::int64_t abs =
                static_cast<std::int64_t>(span.start_ns) +
                input.clock_offset_ns;
            if (!have_base || abs < base) {
                base = abs;
                have_base = true;
            }
        }
    }
    std::ostringstream out;
    out << "{\"metadata\": {\"schema\": \"moc-cluster/1\", \"roles\": "
        << inputs.size() << ", \"base_ns\": " << base
        << "},\n\"traceEvents\": [";
    bool first = true;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const RoleSpans& input = inputs[i];
        const std::uint64_t pid = i + 1;
        out << (first ? "" : ",") << "\n  {\"name\": \"process_name\", "
            << "\"ph\": \"M\", \"pid\": " << pid
            << ", \"args\": {\"name\": \"" << JsonEscape(input.role)
            << "\"}}";
        first = false;
        for (const FlightSpan& span : input.spans) {
            const std::int64_t abs =
                static_cast<std::int64_t>(span.start_ns) +
                input.clock_offset_ns - base;
            out << ",\n  {\"name\": \"" << JsonEscape(span.name)
                << "\", \"cat\": \"" << JsonEscape(span.category)
                << "\", \"ph\": \"X\", \"ts\": "
                << TraceMicros(static_cast<std::uint64_t>(
                       abs < 0 ? 0 : abs))
                << ", \"dur\": " << TraceMicros(span.duration_ns)
                << ", \"pid\": " << pid << ", \"tid\": " << span.tid;
            if (span.generation != 0 || span.rank >= 0 ||
                !span.phase.empty()) {
                out << ", \"args\": {\"gen\": " << span.generation
                    << ", \"iter\": " << span.iteration
                    << ", \"rank\": " << span.rank << ", \"phase\": \""
                    << JsonEscape(span.phase) << "\"}";
            }
            out << "}";
        }
    }
    out << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
    return out.str();
}

std::string
ClusterMetricsJson(
    const std::vector<std::pair<std::string, std::string>>& role_texts,
    std::size_t* skipped) {
    std::ostringstream out;
    out << "{\n  \"schema\": \"moc-cluster/1\",\n  \"roles\": {";
    bool first = true;
    std::size_t bad = 0;
    for (const auto& [role, text] : role_texts) {
        try {
            json::Parse(text);
        } catch (const std::invalid_argument&) {
            ++bad;  // a killed process's torn dump: skip, count, continue
            continue;
        }
        // Indent the validated document so the merged file stays readable.
        std::string body = text;
        while (!body.empty() &&
               (body.back() == '\n' || body.back() == ' ')) {
            body.pop_back();
        }
        out << (first ? "" : ",") << "\n    \"" << JsonEscape(role)
            << "\": " << body;
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    if (skipped != nullptr) {
        *skipped = bad;
    }
    return out.str();
}

}  // namespace moc::obs
