#ifndef MOC_OBS_EXPORT_H_
#define MOC_OBS_EXPORT_H_

/**
 * @file
 * Exporters for the observability layer:
 *
 *  - a metrics dump as one JSON object (run metadata header, counters /
 *    gauges / histograms, per-expert telemetry), written next to bench
 *    results or wherever `--metrics-out` points;
 *  - the trace rings as a Chrome-trace event file (open with
 *    chrome://tracing or https://ui.perfetto.dev);
 *  - the event journal as JSONL (obs/journal.h) via `--events-out`;
 *  - Prometheus text format (obs/prometheus.h) via `--prom-out`.
 *
 * Plus the shared flag handling used by `moc_cli` and the examples:
 * `ExtractObsOptions` strips the flags from a token list, `ObsExportGuard`
 * wires an entire main() in two lines.
 */

#include <string>
#include <vector>

namespace moc::obs {

/** JSON string-escapes @p s (quotes, backslash, control characters). */
std::string JsonEscape(const std::string& s);

/** Shortest round-trippable decimal of @p value (%.9g). */
std::string JsonNumber(double value);

/**
 * Writes @p content to @p path, creating parent directories; @p what names
 * the artifact in the warning log on failure.
 */
bool WriteTextFile(const std::string& path, const std::string& content,
                   const char* what);

/** The full registry as a pretty-printed JSON object. */
std::string MetricsJson();

/**
 * Writes MetricsJson() to @p path, creating parent directories.
 * @return false (with a warning log) if the filesystem refuses.
 */
bool WriteMetricsJson(const std::string& path);

/** All buffered trace events in Chrome trace-event JSON format. */
std::string ChromeTraceJson();

/** Writes ChromeTraceJson() to @p path, creating parent directories. */
bool WriteChromeTrace(const std::string& path);

/** Where a run should export its observability data (empty = don't). */
struct ObsOptions {
    std::string metrics_out;
    std::string trace_out;
    std::string events_out;
    std::string prom_out;
    /** Per-iteration time-series ring as JSONL (obs/timeseries.h). */
    std::string series_out;
};

/**
 * Removes `--metrics-out <path>` / `--trace-out <path>` / `--events-out
 * <path>` / `--prom-out <path>` / `--series-out <path>` from @p tokens and
 * returns them. Enables the tracer when a trace path is given.
 * @throws std::invalid_argument on a flag without a value.
 */
ObsOptions ExtractObsOptions(std::vector<std::string>& tokens);

/** Writes whichever outputs @p options requests; true if all succeeded. */
bool ExportObs(const ObsOptions& options);

/**
 * RAII main() wrapper for the examples: strips the export flags (and their
 * values) out of argc/argv at construction — so the program's own argument
 * parsing never sees them — records the command line as run metadata,
 * enables tracing if asked, and performs the export at scope exit,
 * announcing the written paths on stdout.
 */
class ObsExportGuard {
  public:
    ObsExportGuard(int& argc, char** argv);
    ~ObsExportGuard();

    ObsExportGuard(const ObsExportGuard&) = delete;
    ObsExportGuard& operator=(const ObsExportGuard&) = delete;

    const ObsOptions& options() const { return options_; }

  private:
    ObsOptions options_;
};

}  // namespace moc::obs

#endif  // MOC_OBS_EXPORT_H_
