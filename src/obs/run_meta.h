#ifndef MOC_OBS_RUN_META_H_
#define MOC_OBS_RUN_META_H_

/**
 * @file
 * Run metadata embedded in every observability export (metrics JSON,
 * Prometheus text, event journal, Chrome trace) so the `results/` JSON
 * artifacts and `moc_cli report` inputs are self-describing: which build
 * produced them, from which commit, with which command line and config.
 *
 * Build type and git SHA are baked in at compile time (MOC_BUILD_TYPE /
 * MOC_GIT_SHA, see src/obs/CMakeLists.txt); the command line is recorded by
 * ObsExportGuard / moc_cli's Main, and the config digest by
 * MocCheckpointSystem when a run binds one.
 */

#include <cstdint>
#include <string>

namespace moc::obs {

/** Schema tag stamped into every export this layer writes. */
inline constexpr const char* kExportSchema = "moc-obs/1";

/** What we know about the producing run. */
struct RunMetadata {
    std::string schema = kExportSchema;
    /** CMake build type ("Debug", "Release", ...; "unknown" outside CMake). */
    std::string build_type;
    /** Short git SHA at configure time, or "unknown". */
    std::string git_sha;
    /** argv[0..n] of the producing process, space-joined. */
    std::string command_line;
    /** CRC-32 (hex) of the bound MocSystemConfig, or empty. */
    std::string config_digest;
    /** Cluster role of the producing process ("coordinator", "rank2", or
        empty for single-process runs). */
    std::string role;
};

/** The process-wide metadata record (compile-time fields pre-filled). */
RunMetadata& RunMeta();

/** Records the producing command line (called by the flag plumbing). */
void SetRunCommandLine(int argc, const char* const* argv);

/** Records the active config digest (called by MocCheckpointSystem). */
void SetRunConfigDigest(const std::string& digest_hex);

/** Records this process's cluster role (called by cluster drivers). */
void SetRunRole(const std::string& role);

/**
 * Publishes the coordinator-relative clock offset (coordinator clock minus
 * local clock, nanoseconds; see net/clock_sync.h). The transport refreshes
 * it on every accepted ping/pong sample; exporters stamp the value current
 * at export time into every artifact so per-role traces and journals can
 * be rebased onto the coordinator's timeline (obs/merge.h). Zero — the
 * default — means "already on the coordinator clock".
 */
void SetClusterClockOffsetNs(std::int64_t offset_ns);

/** The last published coordinator-relative offset (0 until aligned). */
std::int64_t ClusterClockOffsetNs();

/**
 * RunMeta() as the *members* of a JSON object (no surrounding braces), e.g.
 * `"schema": "moc-obs/1", "build_type": "Release", ...` — splice-ready for
 * the hand-rolled emitters.
 */
std::string RunMetaJsonFields();

}  // namespace moc::obs

#endif  // MOC_OBS_RUN_META_H_
