#ifndef MOC_OBS_EXPERT_STATS_H_
#define MOC_OBS_EXPERT_STATS_H_

/**
 * @file
 * Per-expert checkpoint telemetry: for every (MoE layer, expert) cell, when
 * it was last snapshotted/persisted, how many bytes its checkpoints cost,
 * and how many of its routed tokens have been permanently lost to faults.
 *
 * MocCheckpointSystem feeds this registry as it saves and recovers (see
 * src/core/moc_system.cc); the exporters include it in the metrics snapshot
 * (JSON `"experts"` array, Prometheus `moc_expert_*` samples), and
 * `moc_cli report` turns it into the staleness summary. Sparse
 * Checkpointing (arXiv:2412.15411) and Lazarus (arXiv:2407.04656) both
 * argue that *which* expert state is stale after recovery is the quantity
 * MoE fault-tolerance decisions hinge on — this makes it first-class.
 *
 * Configure() re-shapes and zeroes the grid (a new MocCheckpointSystem run
 * starts clean); MetricsRegistry::ResetAll() also resets it so repeated
 * bench iterations in one process don't leak attribution across runs.
 */

#include <cstdint>
#include <mutex>
#include <vector>

namespace moc::obs {

/** Telemetry of one (layer, expert) cell. */
struct ExpertStat {
    std::uint32_t layer = 0;
    std::uint32_t expert = 0;
    /** Iteration whose state the freshest memory snapshot holds. */
    std::uint64_t last_snapshot_iteration = 0;
    /** Iteration whose state persistent storage holds. */
    std::uint64_t last_persist_iteration = 0;
    /** Iterations since the last snapshot / persist (vs. the current
     *  training iteration at snapshot time). */
    std::uint64_t snapshot_staleness = 0;
    std::uint64_t persist_staleness = 0;
    /** How many checkpoint events included this expert, per level. */
    std::uint64_t snapshots = 0;
    std::uint64_t persists = 0;
    /** Cumulative checkpoint bytes attributed to this expert, per level. */
    std::uint64_t snapshot_bytes = 0;
    std::uint64_t persist_bytes = 0;
    /** Tokens permanently lost across all faults (PltLedger attribution). */
    std::uint64_t lost_tokens = 0;
};

/**
 * Process-wide grid of ExpertStat cells. Updates take a mutex; they happen
 * per checkpoint/recovery event, never on the training hot path.
 */
class ExpertStatsRegistry {
  public:
    static ExpertStatsRegistry& Instance();

    /** Re-shapes the grid to layers x experts and zeroes every cell. */
    void Configure(std::size_t num_layers, std::size_t num_experts);

    /** Advances the iteration that staleness is measured against. */
    void SetIteration(std::uint64_t iteration);

    void OnSnapshot(std::size_t layer, std::size_t expert,
                    std::uint64_t iteration, std::uint64_t bytes);
    void OnPersist(std::size_t layer, std::size_t expert,
                   std::uint64_t iteration, std::uint64_t bytes);
    void SetLostTokens(std::size_t layer, std::size_t expert,
                       std::uint64_t tokens);

    /**
     * After a fault recovery replays history back to @p restart_iteration,
     * clamps the last-saved bookkeeping so staleness can't reference erased
     * iterations (mirrors MocCheckpointSystem::last_snap_iter_).
     */
    void OnRecovery(std::uint64_t restart_iteration);

    std::size_t num_layers() const;
    std::size_t num_experts() const;

    /** The training iteration staleness is currently measured against. */
    std::uint64_t iteration() const;

    /** Row-major copy of the grid with staleness fields computed. */
    std::vector<ExpertStat> Snapshot() const;

    /** Zeroes every cell (shape kept). MetricsRegistry::ResetAll calls it. */
    void Reset();

  private:
    ExpertStatsRegistry() = default;

    ExpertStat& Cell(std::size_t layer, std::size_t expert);

    mutable std::mutex mu_;
    std::size_t num_layers_ = 0;
    std::size_t num_experts_ = 0;
    std::uint64_t iteration_ = 0;
    std::vector<ExpertStat> cells_;
};

}  // namespace moc::obs

#endif  // MOC_OBS_EXPERT_STATS_H_
