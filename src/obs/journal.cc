#include "obs/journal.h"

#include <sstream>
#include <stdexcept>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/run_meta.h"
#include "obs/trace.h"
#include "util/json.h"

namespace moc::obs {

namespace {

struct KindName {
    EventKind kind;
    const char* name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kCkptBegin, "ckpt_begin"},
    {EventKind::kCkptEnd, "ckpt_end"},
    {EventKind::kSnapshot, "snapshot"},
    {EventKind::kPersist, "persist"},
    {EventKind::kFault, "fault"},
    {EventKind::kRecoveryBegin, "recovery_begin"},
    {EventKind::kRecoveryEnd, "recovery_end"},
    {EventKind::kDynamicKBump, "dynamic_k_bump"},
    {EventKind::kStorageFault, "storage_fault"},
    {EventKind::kDegradedRecovery, "degraded_recovery"},
    {EventKind::kClusterSeal, "cluster_seal"},
    {EventKind::kStall, "stall"},
    {EventKind::kPeerDeath, "peer_death"},
    {EventKind::kStraggler, "straggler"},
    {EventKind::kMembershipChange, "membership_change"},
    {EventKind::kRejoin, "rejoin"},
};

}  // namespace

std::uint64_t
JournalEpochNs() {
    // Latched at first use (first append or first export), for relative
    // wall stamps.
    static const std::uint64_t epoch = Tracer::NowNs();
    return epoch;
}

const char*
EventKindName(EventKind kind) {
    for (const auto& entry : kKindNames) {
        if (entry.kind == kind) {
            return entry.name;
        }
    }
    return "unknown";
}

EventKind
EventKindFromName(const std::string& name) {
    for (const auto& entry : kKindNames) {
        if (name == entry.name) {
            return entry.kind;
        }
    }
    throw std::invalid_argument("unknown event type '" + name + "'");
}

EventJournal&
EventJournal::Instance() {
    static EventJournal* journal = new EventJournal();
    return *journal;
}

std::uint64_t
EventJournal::Append(JournalEvent event) {
    // Latch the epoch before reading the clock: on the first-ever append the
    // opposite order would latch an epoch *later* than now_ns and wrap.
    const std::uint64_t epoch = JournalEpochNs();
    const std::uint64_t now_ns = Tracer::NowNs();
    // Stamp checkpoint-event identity from the thread's trace context, so
    // journal records correlate with spans without every call site having to
    // thread generation/rank by hand. Explicit fields win over the context.
    const TraceContext& ctx = CurrentTraceContext();
    if (event.gen == 0) {
        event.gen = ctx.generation;
    }
    if (event.scope == kGlobalScope && ctx.rank >= 0) {
        event.scope = ctx.rank;
    }
    std::lock_guard<std::mutex> lock(mu_);
    event.seq = next_seq_++;
    event.wall_s = static_cast<double>(now_ns - epoch) / 1e9;
    if (events_.size() >= kMaxEvents) {
        ++dropped_;
        // Surfaced by `moc_cli report`: nonzero means the exported journal
        // is a prefix of what actually happened.
        static Counter& dropped_ctr =
            MetricsRegistry::Instance().GetCounter("obs.journal.dropped");
        dropped_ctr.Add();
        return event.seq;
    }
    const std::uint64_t seq = event.seq;
    events_.push_back(std::move(event));
    return seq;
}

std::vector<JournalEvent>
EventJournal::Collect() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::size_t
EventJournal::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::uint64_t
EventJournal::dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

void
EventJournal::Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    next_seq_ = 0;
    dropped_ = 0;
}

std::string
EventsJsonl() {
    const auto events = EventJournal::Instance().Collect();
    std::ostringstream out;
    out << "{\"type\": \"meta\", " << RunMetaJsonFields()
        << ", \"clock_epoch_ns\": " << JournalEpochNs()
        << ", \"events\": " << events.size() << "}\n";
    for (const JournalEvent& e : events) {
        out << "{\"type\": \"" << EventKindName(e.kind) << "\", \"seq\": "
            << e.seq << ", \"t\": " << JsonNumber(e.wall_s)
            << ", \"iter\": " << e.iteration << ", \"scope\": " << e.scope
            << ", \"gen\": " << e.gen << ", \"bytes\": " << e.bytes
            << ", \"plt\": " << JsonNumber(e.plt)
            << ", \"k\": " << e.k << ", \"detail\": \"" << JsonEscape(e.detail)
            << "\"";
        if (!e.role.empty()) {
            out << ", \"role\": \"" << JsonEscape(e.role) << "\"";
        }
        out << "}\n";
    }
    return out.str();
}

bool
WriteEventsJsonl(const std::string& path) {
    return WriteTextFile(path, EventsJsonl(), "event journal");
}

std::vector<JournalEvent>
ParseEventsJsonl(const std::string& text) {
    std::vector<JournalEvent> events;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;
        }
        json::Value record;
        try {
            record = json::Parse(line);
        } catch (const std::invalid_argument& e) {
            throw std::invalid_argument("events line " + std::to_string(lineno) +
                                        ": " + e.what());
        }
        const std::string type = record.At("type").AsString();
        if (type == "meta") {
            continue;
        }
        JournalEvent e;
        e.kind = EventKindFromName(type);
        e.seq = static_cast<std::uint64_t>(record.NumberOr("seq", 0.0));
        e.wall_s = record.NumberOr("t", 0.0);
        e.iteration = static_cast<std::uint64_t>(record.NumberOr("iter", 0.0));
        e.scope = static_cast<std::int64_t>(
            record.NumberOr("scope", static_cast<double>(kGlobalScope)));
        e.gen = static_cast<std::uint64_t>(record.NumberOr("gen", 0.0));
        e.bytes = static_cast<std::uint64_t>(record.NumberOr("bytes", 0.0));
        e.plt = record.NumberOr("plt", -1.0);
        e.k = static_cast<std::uint64_t>(record.NumberOr("k", 0.0));
        e.detail = record.StringOr("detail", "");
        e.role = record.StringOr("role", "");
        events.push_back(std::move(e));
    }
    return events;
}

}  // namespace moc::obs
