#include "obs/run_meta.h"

#include <atomic>
#include <sstream>

#include "obs/export.h"

#ifndef MOC_BUILD_TYPE
#define MOC_BUILD_TYPE "unknown"
#endif
#ifndef MOC_GIT_SHA
#define MOC_GIT_SHA "unknown"
#endif

namespace moc::obs {

namespace {

/** Refreshed continuously by the transport's reader thread, read by every
    exporter: an atomic, not a RunMetadata field. */
std::atomic<std::int64_t> g_cluster_clock_offset_ns{0};

}  // namespace

RunMetadata&
RunMeta() {
    static RunMetadata* meta = [] {
        auto* m = new RunMetadata();
        m->build_type = MOC_BUILD_TYPE;
        m->git_sha = MOC_GIT_SHA;
        return m;
    }();
    return *meta;
}

void
SetRunCommandLine(int argc, const char* const* argv) {
    std::ostringstream joined;
    for (int i = 0; i < argc; ++i) {
        joined << (i == 0 ? "" : " ") << argv[i];
    }
    RunMeta().command_line = joined.str();
}

void
SetRunConfigDigest(const std::string& digest_hex) {
    RunMeta().config_digest = digest_hex;
}

void
SetRunRole(const std::string& role) {
    RunMeta().role = role;
}

void
SetClusterClockOffsetNs(std::int64_t offset_ns) {
    g_cluster_clock_offset_ns.store(offset_ns, std::memory_order_relaxed);
}

std::int64_t
ClusterClockOffsetNs() {
    return g_cluster_clock_offset_ns.load(std::memory_order_relaxed);
}

std::string
RunMetaJsonFields() {
    const RunMetadata& meta = RunMeta();
    std::ostringstream out;
    out << "\"schema\": \"" << JsonEscape(meta.schema) << "\", \"build_type\": \""
        << JsonEscape(meta.build_type) << "\", \"git_sha\": \""
        << JsonEscape(meta.git_sha) << "\", \"command_line\": \""
        << JsonEscape(meta.command_line) << "\", \"config_digest\": \""
        << JsonEscape(meta.config_digest) << "\", \"role\": \""
        << JsonEscape(meta.role) << "\", \"clock_offset_ns\": "
        << ClusterClockOffsetNs();
    return out.str();
}

}  // namespace moc::obs
