#include "obs/cluster_view.h"

#include <algorithm>
#include <sstream>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace moc::obs {

namespace {

/** Process-wide current activity, published by drivers at phase edges. */
struct ActivityCell {
    std::mutex mu;
    RankActivity value;
};

ActivityCell&
Activity() {
    static ActivityCell* cell = new ActivityCell();
    return *cell;
}

/** One decimal-friendly "x.xxxs" rendering for journal details. */
std::string
Seconds(double s) {
    std::ostringstream out;
    out.precision(4);
    out << s << "s";
    return out.str();
}

}  // namespace

void
SetRankActivity(const char* phase, std::uint64_t generation,
                std::uint64_t iteration) {
    ActivityCell& cell = Activity();
    std::lock_guard<std::mutex> lock(cell.mu);
    cell.value.phase = (phase == nullptr) ? "" : phase;
    cell.value.generation = generation;
    cell.value.iteration = iteration;
    cell.value.since_ns = static_cast<std::int64_t>(Tracer::NowNs());
}

RankActivity
GetRankActivity() {
    ActivityCell& cell = Activity();
    std::lock_guard<std::mutex> lock(cell.mu);
    return cell.value;
}

ClusterAggregator&
ClusterAggregator::Instance() {
    static ClusterAggregator* aggregator = new ClusterAggregator();
    return *aggregator;
}

void
ClusterAggregator::SetPolicy(const StragglerPolicy& policy) {
    std::lock_guard<std::mutex> lock(mu_);
    policy_ = policy;
}

void
ClusterAggregator::Observe(const TelemetrySample& sample,
                           std::int64_t local_now_ns) {
    static Counter& observed =
        MetricsRegistry::Instance().GetCounter("obs.cluster.samples");
    observed.Add();
    std::lock_guard<std::mutex> lock(mu_);
    ++total_samples_;
    RankState& state = ranks_[sample.rank];
    if (!state.alive) {
        // Fresh telemetry from a rank the transport had declared dead: it
        // respawned and rejoined. Flip it back to alive — the death verdict
        // described the *previous* incarnation — and journal the
        // resurrection once per death/rejoin cycle.
        state.alive = true;
        const std::string was = state.death_cause;
        state.death_cause.clear();
        if (state.resurrection_pending) {
            state.resurrection_pending = false;
            static Counter& resurrections =
                MetricsRegistry::Instance().GetCounter(
                    "obs.cluster.resurrections");
            resurrections.Add();
            JournalEvent event;
            event.kind = EventKind::kRejoin;
            event.scope = sample.rank;
            event.gen = sample.generation;
            event.iteration = sample.iteration;
            event.detail = "resurrected was=" + was;
            EventJournal::Instance().Append(std::move(event));
        }
    }
    // A phase transition closes out the previous phase: its best-estimate
    // duration (new phase start, else publish stamp, minus old start — all
    // sender-clock) feeds the cluster median the detector compares against.
    const TelemetrySample& prev = state.last;
    const bool had_phase = state.samples > 0 && !prev.phase.empty();
    const bool transition =
        had_phase &&
        (prev.phase != sample.phase || prev.generation != sample.generation);
    if (transition && prev.phase_since_ns > 0) {
        const std::int64_t end_ns = sample.phase_since_ns > 0
                                        ? sample.phase_since_ns
                                        : sample.sent_ns;
        const double duration_s =
            static_cast<double>(end_ns - prev.phase_since_ns) / 1e9;
        if (duration_s > 0) {
            completed_s_[{prev.generation, prev.phase}].push_back(duration_s);
        }
        state.straggler = false;  // it finished; the flag is per in-flight lag
    }
    state.last = sample;
    state.last_heard_ns = local_now_ns;
    ++state.samples;
    state.ring.push_back(sample);
    if (state.ring.size() > kRingCapacity) {
        state.ring.pop_front();
    }
    DetectStraggler(state);
}

void
ClusterAggregator::DetectStraggler(RankState& state) {
    const TelemetrySample& s = state.last;
    if (s.phase.empty() || s.phase_since_ns <= 0 ||
        s.sent_ns <= s.phase_since_ns) {
        return;
    }
    const double elapsed_s =
        static_cast<double>(s.sent_ns - s.phase_since_ns) / 1e9;
    const auto it = completed_s_.find({s.generation, s.phase});
    if (it == completed_s_.end() || it->second.size() < policy_.min_peers) {
        return;  // too few finishers to call anyone slow yet
    }
    const double median_s = Median(it->second);
    if (median_s <= 0 || elapsed_s < policy_.min_s ||
        elapsed_s <= policy_.ratio * median_s) {
        return;
    }
    state.straggler = true;
    auto& flagged = flagged_[{s.generation, s.rank}];
    if (flagged) {
        return;  // journal once per (generation, rank)
    }
    flagged = true;
    static Counter& stragglers =
        MetricsRegistry::Instance().GetCounter("obs.cluster.stragglers");
    stragglers.Add();
    JournalEvent event;
    event.kind = EventKind::kStraggler;
    event.scope = s.rank;
    event.gen = s.generation;
    event.iteration = s.iteration;
    std::ostringstream detail;
    detail << "phase=" << s.phase << " elapsed=" << Seconds(elapsed_s)
           << " median=" << Seconds(median_s)
           << " peers_done=" << it->second.size();
    event.detail = detail.str();
    EventJournal::Instance().Append(std::move(event));
}

void
ClusterAggregator::ObservePeerDeath(std::int32_t rank,
                                    const std::string& cause) {
    std::lock_guard<std::mutex> lock(mu_);
    RankState& state = ranks_[rank];
    state.alive = false;
    state.death_cause = cause;
    state.resurrection_pending = true;
}

std::vector<ClusterAggregator::RankHealth>
ClusterAggregator::Health() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<RankHealth> rows;
    rows.reserve(ranks_.size());
    for (const auto& [rank, state] : ranks_) {
        RankHealth row;
        row.rank = rank;
        row.alive = state.alive;
        row.death_cause = state.death_cause;
        row.samples = state.samples;
        row.last_heard_ns = state.last_heard_ns;
        row.straggler = state.straggler;
        if (state.samples > 0) {
            const TelemetrySample& s = state.last;
            row.phase = s.phase;
            row.generation = s.generation;
            row.iteration = s.iteration;
            if (!s.phase.empty() && s.phase_since_ns > 0 &&
                s.sent_ns > s.phase_since_ns) {
                row.elapsed_in_phase_s =
                    static_cast<double>(s.sent_ns - s.phase_since_ns) / 1e9;
            }
            const auto it = completed_s_.find({s.generation, s.phase});
            if (it != completed_s_.end() && !it->second.empty()) {
                row.cluster_median_s = Median(it->second);
                row.slack_s = row.cluster_median_s - row.elapsed_in_phase_s;
            }
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<TelemetrySample>
ClusterAggregator::Series(std::int32_t rank) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = ranks_.find(rank);
    if (it == ranks_.end()) {
        return {};
    }
    return {it->second.ring.begin(), it->second.ring.end()};
}

std::uint64_t
ClusterAggregator::samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_samples_;
}

std::vector<std::int32_t>
ClusterAggregator::Stragglers() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::int32_t> out;
    for (const auto& [rank, state] : ranks_) {
        if (state.straggler) {
            out.push_back(rank);
        }
    }
    return out;
}

void
ClusterAggregator::Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    ranks_.clear();
    completed_s_.clear();
    flagged_.clear();
    total_samples_ = 0;
}

double
ClusterAggregator::Median(std::vector<double> durations_s) {
    if (durations_s.empty()) {
        return -1.0;
    }
    std::sort(durations_s.begin(), durations_s.end());
    const std::size_t mid = durations_s.size() / 2;
    if (durations_s.size() % 2 == 1) {
        return durations_s[mid];
    }
    return (durations_s[mid - 1] + durations_s[mid]) / 2.0;
}

}  // namespace moc::obs
