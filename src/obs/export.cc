#include "obs/export.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/run_meta.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace moc::obs {

namespace {

/**
 * Nanoseconds as fractional microseconds with full precision. %.9g would
 * round large steady-clock stamps to ~100 µs, destroying span ordering for
 * trace round-trips (obs/critical_path.h).
 */
std::string
TraceMicros(std::uint64_t ns) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    return buf;
}

}  // namespace

std::string
JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string
JsonNumber(double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

bool
WriteTextFile(const std::string& path, const std::string& content,
              const char* what) {
    try {
        const std::filesystem::path p(path);
        if (p.has_parent_path()) {
            std::filesystem::create_directories(p.parent_path());
        }
        std::ofstream out(p, std::ios::trunc);
        out << content;
        out.flush();
        if (!out) {
            MOC_WARN << "failed writing " << what << " to " << path;
            return false;
        }
        return true;
    } catch (const std::filesystem::filesystem_error& e) {
        MOC_WARN << "failed writing " << what << " to " << path << ": "
                 << e.what();
        return false;
    }
}

std::string
MetricsJson() {
    const MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
    std::ostringstream out;
    out << "{\n  \"meta\": {" << RunMetaJsonFields() << "},\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
        out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
            << "\": " << value;
        first = false;
    }
    out << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : snap.gauges) {
        out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
            << "\": " << JsonNumber(value);
        first = false;
    }
    out << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, data] : snap.histograms) {
        out << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": {"
            << "\"count\": " << data.count << ", \"sum\": "
            << JsonNumber(data.sum) << ", \"mean\": "
            << JsonNumber(data.count > 0
                              ? data.sum / static_cast<double>(data.count)
                              : 0.0)
            << ", \"buckets\": [";
        for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
            const std::string le = i < data.bounds.size()
                                       ? JsonNumber(data.bounds[i])
                                       : std::string("\"+inf\"");
            out << (i == 0 ? "" : ", ") << "{\"le\": " << le
                << ", \"count\": " << data.bucket_counts[i] << "}";
        }
        out << "]}";
        first = false;
    }
    out << (snap.histograms.empty() ? "" : "\n  ") << "},\n  \"experts\": [";
    first = true;
    for (const ExpertStat& cell : snap.experts) {
        out << (first ? "" : ",") << "\n    {\"layer\": " << cell.layer
            << ", \"expert\": " << cell.expert
            << ", \"last_snapshot_iteration\": " << cell.last_snapshot_iteration
            << ", \"last_persist_iteration\": " << cell.last_persist_iteration
            << ", \"snapshot_staleness\": " << cell.snapshot_staleness
            << ", \"persist_staleness\": " << cell.persist_staleness
            << ", \"snapshots\": " << cell.snapshots
            << ", \"persists\": " << cell.persists
            << ", \"snapshot_bytes\": " << cell.snapshot_bytes
            << ", \"persist_bytes\": " << cell.persist_bytes
            << ", \"lost_tokens\": " << cell.lost_tokens << "}";
        first = false;
    }
    out << (snap.experts.empty() ? "" : "\n  ") << "]\n}\n";
    return out.str();
}

bool
WriteMetricsJson(const std::string& path) {
    return WriteTextFile(path, MetricsJson(), "metrics JSON");
}

std::string
ChromeTraceJson() {
    const auto events = Tracer::Instance().Collect();
    std::ostringstream out;
    out << "{\"metadata\": {" << RunMetaJsonFields() << "},\n\"traceEvents\": [";
    bool first = true;
    for (const TraceEvent& event : events) {
        out << (first ? "" : ",") << "\n  {\"name\": \""
            << JsonEscape(event.name) << "\", \"cat\": \""
            << JsonEscape(event.category) << "\", \"ph\": \"X\", \"ts\": "
            << TraceMicros(event.start_ns) << ", \"dur\": "
            << TraceMicros(event.duration_ns)
            << ", \"pid\": 1, \"tid\": " << event.tid;
        // Checkpoint-event identity rides in "args" so chrome://tracing
        // shows it per-span and moc_cli trace can re-assemble generations.
        if (event.generation != 0 || event.rank >= 0 ||
            event.phase[0] != '\0') {
            out << ", \"args\": {\"gen\": " << event.generation
                << ", \"iter\": " << event.iteration
                << ", \"rank\": " << event.rank << ", \"phase\": \""
                << JsonEscape(event.phase) << "\"}";
        }
        out << "}";
        first = false;
    }
    out << (events.empty() ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
    return out.str();
}

bool
WriteChromeTrace(const std::string& path) {
    return WriteTextFile(path, ChromeTraceJson(), "chrome trace");
}

ObsOptions
ExtractObsOptions(std::vector<std::string>& tokens) {
    ObsOptions options;
    std::vector<std::string> kept;
    kept.reserve(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string& tok = tokens[i];
        std::string* slot = nullptr;
        if (tok == "--metrics-out") {
            slot = &options.metrics_out;
        } else if (tok == "--trace-out") {
            slot = &options.trace_out;
        } else if (tok == "--events-out") {
            slot = &options.events_out;
        } else if (tok == "--prom-out") {
            slot = &options.prom_out;
        } else if (tok == "--series-out") {
            slot = &options.series_out;
        }
        if (slot != nullptr) {
            if (i + 1 >= tokens.size()) {
                throw std::invalid_argument("option " + tok + " needs a value");
            }
            *slot = tokens[++i];
        } else {
            kept.push_back(tok);
        }
    }
    tokens = std::move(kept);
    if (!options.trace_out.empty()) {
        Tracer::Instance().set_enabled(true);
    }
    return options;
}

bool
ExportObs(const ObsOptions& options) {
    bool ok = true;
    if (!options.metrics_out.empty()) {
        ok = WriteMetricsJson(options.metrics_out) && ok;
    }
    if (!options.trace_out.empty()) {
        ok = WriteChromeTrace(options.trace_out) && ok;
    }
    if (!options.events_out.empty()) {
        ok = WriteEventsJsonl(options.events_out) && ok;
    }
    if (!options.prom_out.empty()) {
        ok = WriteMetricsPrometheus(options.prom_out) && ok;
    }
    if (!options.series_out.empty()) {
        ok = WriteTextFile(options.series_out,
                           TimeSeriesRing::Instance().Jsonl(),
                           "iteration series JSONL") &&
             ok;
    }
    return ok;
}

ObsExportGuard::ObsExportGuard(int& argc, char** argv) {
    SetRunCommandLine(argc, argv);
    std::vector<std::string> tokens;
    tokens.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i) {
        tokens.emplace_back(argv[i]);
    }
    options_ = ExtractObsOptions(tokens);  // throws on a flag without a value
    // Compact argv so the program's own parsing only sees its positionals.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--metrics-out" || arg == "--trace-out" ||
            arg == "--events-out" || arg == "--prom-out" ||
            arg == "--series-out") {
            ++i;  // skip the value; ExtractObsOptions guaranteed it exists
            continue;
        }
        argv[kept++] = argv[i];
    }
    argv[kept] = nullptr;
    argc = kept;
}

ObsExportGuard::~ObsExportGuard() {
    if (!options_.metrics_out.empty() && WriteMetricsJson(options_.metrics_out)) {
        std::printf("metrics written to %s\n", options_.metrics_out.c_str());
    }
    if (!options_.trace_out.empty() && WriteChromeTrace(options_.trace_out)) {
        std::printf("trace written to %s\n", options_.trace_out.c_str());
    }
    if (!options_.events_out.empty() && WriteEventsJsonl(options_.events_out)) {
        std::printf("events written to %s\n", options_.events_out.c_str());
    }
    if (!options_.prom_out.empty() &&
        WriteMetricsPrometheus(options_.prom_out)) {
        std::printf("prometheus metrics written to %s\n",
                    options_.prom_out.c_str());
    }
    if (!options_.series_out.empty() &&
        WriteTextFile(options_.series_out, TimeSeriesRing::Instance().Jsonl(),
                      "iteration series JSONL")) {
        std::printf("iteration series written to %s\n",
                    options_.series_out.c_str());
    }
}

}  // namespace moc::obs
