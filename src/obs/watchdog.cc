#include "obs/watchdog.h"

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace moc::obs {

namespace {

Counter&
StallEventsCounter() {
    static Counter& ctr =
        MetricsRegistry::Instance().GetCounter("obs.stall.events");
    return ctr;
}

Gauge&
StallActiveGauge() {
    static Gauge& gauge =
        MetricsRegistry::Instance().GetGauge("obs.stall.active");
    return gauge;
}

Histogram&
OverrunHistogram() {
    static Histogram& hist = MetricsRegistry::Instance().GetHistogram(
        "obs.stall.overrun_seconds",
        ExponentialBuckets(0.001, 2.0, 16));
    return hist;
}

std::string
StallDetail(const char* phase, const std::string& detail, double budget_s,
            double elapsed_s) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "phase=%s budget_s=%.3f elapsed_s=%.3f", phase, budget_s,
                  elapsed_s);
    std::string out = buf;
    if (!detail.empty()) {
        out += " ";
        out += detail;
    }
    return out;
}

}  // namespace

StallWatchdog::StallWatchdog(double poll_interval_s)
    : poll_interval_s_(poll_interval_s > 0.0 ? poll_interval_s : 0.002) {
    thread_ = std::thread([this] { PollLoop(); });
}

StallWatchdog::~StallWatchdog() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

std::uint64_t
StallWatchdog::OpBegin(const char* phase, double budget_s,
                       const TraceContext& ctx, std::string detail) {
    Op op;
    op.phase = phase;
    op.budget_s = budget_s;
    op.start_ns = Tracer::NowNs();
    op.ctx = ctx;
    op.detail = std::move(detail);
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = next_id_++;
    ops_.emplace(id, std::move(op));
    return id;
}

void
StallWatchdog::OpEnd(std::uint64_t id) {
    Op op;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = ops_.find(id);
        if (it == ops_.end()) {
            return;
        }
        op = std::move(it->second);
        ops_.erase(it);
    }
    const double elapsed_s =
        static_cast<double>(Tracer::NowNs() - op.start_ns) / 1e9;
    if (elapsed_s > op.budget_s) {
        OverrunHistogram().Observe(elapsed_s - op.budget_s);
    }
    if (op.fired) {
        StallActiveGauge().Add(-1.0);
    }
}

std::uint64_t
StallWatchdog::stalls_fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_total_;
}

void
StallWatchdog::PollLoop() {
    const auto interval = std::chrono::duration<double>(poll_interval_s_);
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        cv_.wait_for(lock, interval);
        if (stop_) {
            return;
        }
        const std::uint64_t now_ns = Tracer::NowNs();
        // Gather overruns under the lock, journal them outside it: the
        // journal and metrics take their own locks and must not nest.
        struct Fired {
            const char* phase;
            double budget_s;
            double elapsed_s;
            TraceContext ctx;
            std::string detail;
        };
        std::vector<Fired> fired;
        for (auto& [id, op] : ops_) {
            const double elapsed_s =
                static_cast<double>(now_ns - op.start_ns) / 1e9;
            if (!op.fired && elapsed_s > op.budget_s) {
                op.fired = true;
                ++fired_total_;
                fired.push_back(
                    {op.phase, op.budget_s, elapsed_s, op.ctx, op.detail});
            }
        }
        lock.unlock();
        for (const Fired& f : fired) {
            StallEventsCounter().Add();
            StallActiveGauge().Add(1.0);
            JournalEvent event;
            event.kind = EventKind::kStall;
            event.iteration = f.ctx.iteration;
            event.gen = f.ctx.generation;
            if (f.ctx.rank >= 0) {
                event.scope = f.ctx.rank;
            }
            event.detail =
                StallDetail(f.phase, f.detail, f.budget_s, f.elapsed_s);
            EventJournal::Instance().Append(event);
        }
        lock.lock();
    }
}

}  // namespace moc::obs
