#ifndef MOC_OBS_TIMESERIES_H_
#define MOC_OBS_TIMESERIES_H_

/**
 * @file
 * The per-iteration time-series ring behind the live observability
 * endpoint (obs/http_endpoint.h): one bounded ring of IterationPoint
 * samples, appended once per training iteration (src/faults/trainer.cc) or
 * per cluster checkpoint event (examples/cluster_procs), queryable live as
 * a `moc-series/1` JSON window over `GET /series` and exported as JSONL at
 * teardown (`--series-out`).
 *
 * The ring is the trajectory form of the paper's Eq. 11-13 overhead
 * accounting: instead of one end-of-run O_save number, every point carries
 * the iteration's wall time, cumulative bytes persisted, cumulative
 * dedup + delta savings, the PLT at that instant, and the cluster's
 * live-rank and straggler counts — enough for `moc_cli watch` to render an
 * in-flight overhead trajectory while the run is still running.
 *
 * Appends are O(1) under one mutex and never allocate past the fixed
 * capacity (older points fall off; `total()` keeps counting), so sampling
 * sits on the training path without becoming part of it.
 */

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace moc::obs {

/** One iteration's sample on the live trajectory. */
struct IterationPoint {
    std::uint64_t iteration = 0;
    /** Seconds since the process's trace epoch (Tracer clock) at append. */
    double t_s = 0.0;
    /** Wall time of this iteration (or barrier wait, cluster-side). */
    double iter_seconds = 0.0;
    /** Cumulative bytes persisted so far (counter reading, not a delta). */
    std::uint64_t bytes_persisted = 0;
    /** Cumulative bytes NOT written thanks to dedup + delta encoding. */
    std::uint64_t bytes_saved = 0;
    /** Proportion of Lost Tokens at this instant (< 0 = unknown). */
    double plt = -1.0;
    /** Ranks currently alive in the cluster view (1 = single process). */
    std::uint64_t live_ranks = 1;
    /** Ranks currently flagged as stragglers. */
    std::uint64_t stragglers = 0;
};

/**
 * Bounded process-wide ring of IterationPoint samples. Thread-safe: the
 * training loop appends while the HTTP endpoint's worker reads windows.
 */
class TimeSeriesRing {
  public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    static TimeSeriesRing& Instance();

    /** Replaces the capacity (tests); drops oldest points to fit. */
    void SetCapacity(std::size_t capacity);

    /** Appends one point; the oldest falls off past capacity. */
    void Append(const IterationPoint& point);

    /**
     * The most recent @p last_n points, oldest first (0 = everything still
     * in the ring).
     */
    std::vector<IterationPoint> Window(std::size_t last_n = 0) const;

    /** Points ever appended, including ones that fell off. */
    std::uint64_t total() const;

    /**
     * The window as one `moc-series/1` JSON object:
     * {"schema":"moc-series/1","total":T,"points":[{...}...]}.
     */
    std::string Json(std::size_t last_n = 0) const;

    /** The window as JSONL, one point object per line (teardown export). */
    std::string Jsonl() const;

    /** Forgets everything (tests and re-runs). */
    void Reset();

  private:
    TimeSeriesRing() = default;

    mutable std::mutex mu_;
    std::size_t capacity_ = kDefaultCapacity;
    std::deque<IterationPoint> ring_;
    std::uint64_t total_ = 0;
};

/**
 * Builds one point from the live registry and cluster view: cumulative
 * persist bytes (`ckpt.persist_bytes` + `cluster.bytes_written`), dedup +
 * delta savings, the `ckpt.plt` gauge, and the ClusterAggregator's
 * alive/straggler counts. Callers may overwrite fields (the cluster
 * coordinator injects barrier-report byte totals) before Append().
 */
IterationPoint CapturePoint(std::uint64_t iteration, double iter_seconds);

/** CapturePoint + Append on the singleton ring (the trainer hook). */
void SampleIteration(std::uint64_t iteration, double iter_seconds);

}  // namespace moc::obs

#endif  // MOC_OBS_TIMESERIES_H_
