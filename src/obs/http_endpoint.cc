#include "obs/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/cluster_view.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/timeseries.h"
#include "util/logging.h"

namespace moc::obs {

namespace {

/** Poll granularity: how often blocked loops recheck the stop flag. */
constexpr int kPollMs = 20;

Counter&
HttpCounter(const char* name) {
    return MetricsRegistry::Instance().GetCounter(name);
}

const char*
StatusText(int status) {
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 503: return "Service Unavailable";
        default: return "Error";
    }
}

void
CloseFd(int fd) {
    if (fd >= 0) {
        ::close(fd);
    }
}

/** Blocking full-buffer send; survives partial writes and EINTR. */
bool
SendAll(int fd, const char* data, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
WriteResponse(int fd, const HttpResponse& response) {
    std::ostringstream head;
    head << "HTTP/1.1 " << response.status << " "
         << StatusText(response.status) << "\r\n"
         << "Content-Type: " << response.content_type << "\r\n"
         << "Content-Length: " << response.body.size() << "\r\n"
         << "Connection: close\r\n\r\n";
    const std::string header = head.str();
    return SendAll(fd, header.data(), header.size()) &&
           SendAll(fd, response.body.data(), response.body.size());
}

/** The `last` query parameter of /series (`?last=N`), 0 when absent. */
std::size_t
QueryLast(const std::string& query) {
    const std::string key = "last=";
    std::size_t pos = 0;
    while (pos < query.size()) {
        const std::size_t end = query.find('&', pos);
        const std::string param =
            query.substr(pos, end == std::string::npos ? end : end - pos);
        if (param.rfind(key, 0) == 0) {
            const char* digits = param.c_str() + key.size();
            char* stop = nullptr;
            const unsigned long long n = std::strtoull(digits, &stop, 10);
            if (stop != digits && *stop == '\0') {
                return static_cast<std::size_t>(n);
            }
        }
        if (end == std::string::npos) {
            break;
        }
        pos = end + 1;
    }
    return 0;
}

/** One row of the health table as a `moc-ranks/1` JSON object. */
void
AppendRankJson(std::ostringstream& out,
               const ClusterAggregator::RankHealth& row) {
    out << "{\"rank\": " << row.rank << ", \"alive\": "
        << (row.alive ? "true" : "false") << ", \"death_cause\": \""
        << JsonEscape(row.death_cause) << "\", \"phase\": \""
        << JsonEscape(row.phase.empty() ? "idle" : row.phase)
        << "\", \"generation\": " << row.generation << ", \"iteration\": "
        << row.iteration << ", \"elapsed_in_phase_s\": "
        << JsonNumber(row.elapsed_in_phase_s) << ", \"cluster_median_s\": "
        << JsonNumber(row.cluster_median_s) << ", \"slack_s\": "
        << JsonNumber(row.slack_s) << ", \"straggler\": "
        << (row.straggler ? "true" : "false") << ", \"samples\": "
        << row.samples << "}";
}

}  // namespace

HttpResponse
HandleMetrics() {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsPrometheus();
    return response;
}

HttpResponse
HandleHealthz() {
    const auto health = ClusterAggregator::Instance().Health();
    std::uint64_t alive = 0;
    std::uint64_t straggling = 0;
    std::uint64_t max_iteration = 0;
    std::ostringstream dead;
    std::size_t dead_count = 0;
    for (const auto& row : health) {
        alive += row.alive ? 1 : 0;
        straggling += row.straggler ? 1 : 0;
        max_iteration = std::max(max_iteration, row.iteration);
        if (!row.alive) {
            dead << (dead_count++ == 0 ? "" : ", ") << "{\"rank\": "
                 << row.rank << ", \"cause\": \""
                 << JsonEscape(row.death_cause) << "\"}";
        }
    }
    // An empty view is a single-process (or not-yet-reporting) run: alive
    // by definition — liveness of the process itself is proven by the 200.
    const bool healthy = dead_count == 0;
    HttpResponse response;
    response.status = healthy ? 200 : 503;
    response.content_type = "application/json";
    std::ostringstream body;
    body << "{\"schema\": \"moc-health/1\", \"healthy\": "
         << (healthy ? "true" : "false") << ", \"ranks\": " << health.size()
         << ", \"alive\": " << alive << ", \"dead\": [" << dead.str()
         << "], \"stragglers\": " << straggling << ", \"iteration\": "
         << max_iteration << ", \"telemetry_samples\": "
         << ClusterAggregator::Instance().samples() << ", \"series_points\": "
         << TimeSeriesRing::Instance().total() << "}\n";
    response.body = body.str();
    return response;
}

HttpResponse
HandleRanks() {
    const auto health = ClusterAggregator::Instance().Health();
    HttpResponse response;
    response.content_type = "application/json";
    std::ostringstream body;
    body << "{\"schema\": \"moc-ranks/1\", \"ranks\": [";
    for (std::size_t i = 0; i < health.size(); ++i) {
        if (i > 0) {
            body << ", ";
        }
        AppendRankJson(body, health[i]);
    }
    body << "]}\n";
    response.body = body.str();
    return response;
}

HttpResponse
HandleSeries(const std::string& query) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = TimeSeriesRing::Instance().Json(QueryLast(query));
    return response;
}

HttpEndpoint::HttpEndpoint(const HttpOptions& options) : options_(options) {
    routes_["/metrics"] = [](const std::string&, const std::string&) {
        return HandleMetrics();
    };
    routes_["/healthz"] = [](const std::string&, const std::string&) {
        return HandleHealthz();
    };
    routes_["/ranks"] = [](const std::string&, const std::string&) {
        return HandleRanks();
    };
    routes_["/series"] = [](const std::string&, const std::string& query) {
        return HandleSeries(query);
    };
}

HttpEndpoint::~HttpEndpoint() {
    Stop();
}

void
HttpEndpoint::SetRoute(const std::string& path, Handler handler) {
    const std::lock_guard<std::mutex> lock(mu_);
    routes_[path] = std::move(handler);
}

void
HttpEndpoint::Start() {
    if (running_.exchange(true)) {
        return;
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        running_ = false;
        throw std::runtime_error("http endpoint socket() failed");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        CloseFd(listen_fd_);
        listen_fd_ = -1;
        running_ = false;
        throw std::runtime_error(std::string("http endpoint bind/listen "
                                             "failed: ") +
                                 std::strerror(errno));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    worker_thread_ = std::thread([this] { WorkerLoop(); });
}

void
HttpEndpoint::Stop() {
    if (!running_.exchange(false)) {
        return;
    }
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    if (worker_thread_.joinable()) {
        worker_thread_.join();
    }
    std::deque<int> leftovers;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        leftovers.swap(pending_);
    }
    for (const int fd : leftovers) {
        CloseFd(fd);
    }
    CloseFd(listen_fd_);
    listen_fd_ = -1;
}

void
HttpEndpoint::AcceptLoop() {
    static Counter& shed = HttpCounter("obs.http.shed");
    while (running_.load()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, kPollMs);
        if (ready <= 0) {
            continue;
        }
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        bool enqueued = false;
        {
            const std::lock_guard<std::mutex> lock(mu_);
            if (pending_.size() < options_.max_pending) {
                pending_.push_back(fd);
                enqueued = true;
            }
        }
        if (enqueued) {
            queue_cv_.notify_one();
        } else {
            // Shed at the door — the worker is saturated and the scrape
            // plane must never build unbounded backlog.
            HttpResponse busy;
            busy.status = 503;
            busy.body = "busy\n";
            WriteResponse(fd, busy);
            CloseFd(fd);
            shed.Add();
        }
    }
}

void
HttpEndpoint::WorkerLoop() {
    while (running_.load()) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(mu_);
            queue_cv_.wait_for(lock, std::chrono::milliseconds(kPollMs),
                               [this] {
                                   return !pending_.empty() ||
                                          !running_.load();
                               });
            if (!pending_.empty()) {
                fd = pending_.front();
                pending_.pop_front();
            }
        }
        if (fd >= 0) {
            HandleConnection(fd);
        }
    }
}

void
HttpEndpoint::HandleConnection(int fd) {
    static Counter& requests = HttpCounter("obs.http.requests");
    static Counter& errors = HttpCounter("obs.http.errors");

    // Read until the end of the request head (blank line), the byte cap,
    // or the deadline. GET requests carry no body worth waiting for.
    std::string request;
    bool have_head = false;
    bool overflow = false;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(options_.request_timeout_s);
    while (running_.load() && !have_head && !overflow) {
        if (std::chrono::steady_clock::now() >= deadline) {
            break;
        }
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, kPollMs);
        if (ready < 0 && errno != EINTR) {
            break;
        }
        if (ready <= 0) {
            continue;
        }
        char buf[1024];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            break;
        }
        request.append(buf, static_cast<std::size_t>(n));
        have_head = request.find("\r\n\r\n") != std::string::npos ||
                    request.find("\n\n") != std::string::npos;
        overflow = request.size() > options_.max_request_bytes;
    }

    HttpResponse response;
    if (!have_head) {
        response.status = 400;
        response.body = overflow ? "request too large\n"
                                 : "incomplete request\n";
    } else {
        std::istringstream head(request.substr(0, request.find('\n')));
        std::string method;
        std::string target;
        std::string version;
        head >> method >> target >> version;
        std::string path = target;
        std::string query;
        const std::size_t qpos = target.find('?');
        if (qpos != std::string::npos) {
            path = target.substr(0, qpos);
            query = target.substr(qpos + 1);
        }
        if (method.empty() || target.empty()) {
            response.status = 400;
            response.body = "malformed request line\n";
        } else if (method != "GET") {
            response.status = 405;
            response.body = "only GET is served here\n";
        } else {
            response = Dispatch(method, path, query);
        }
    }
    WriteResponse(fd, response);
    CloseFd(fd);
    requests.Add();
    if (response.status >= 400) {
        errors.Add();
    }
}

HttpResponse
HttpEndpoint::Dispatch(const std::string& method, const std::string& path,
                       const std::string& query) const {
    (void)method;
    Handler handler;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto it = routes_.find(path);
        if (it != routes_.end()) {
            handler = it->second;
        }
    }
    if (!handler) {
        HttpResponse response;
        response.status = 404;
        response.body = "no such route; try /metrics /healthz /ranks "
                        "/series\n";
        return response;
    }
    try {
        return handler(path, query);
    } catch (const std::exception& e) {
        HttpResponse response;
        response.status = 500;
        response.body = std::string("handler failed: ") + e.what() + "\n";
        return response;
    }
}

std::optional<HttpResult>
HttpGet(const std::string& host, std::uint16_t port, const std::string& path,
        double timeout_s) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return std::nullopt;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
        CloseFd(fd);
        return std::nullopt;
    }
    const std::string request = "GET " + path +
                                " HTTP/1.1\r\nHost: " + host +
                                "\r\nConnection: close\r\n\r\n";
    if (!SendAll(fd, request.data(), request.size())) {
        CloseFd(fd);
        return std::nullopt;
    }
    std::string raw;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, kPollMs);
        if (ready < 0 && errno != EINTR) {
            break;
        }
        if (ready <= 0) {
            continue;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n <= 0) {
            break;  // EOF: Connection: close semantics — we have it all
        }
        raw.append(buf, static_cast<std::size_t>(n));
    }
    CloseFd(fd);

    // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
    if (raw.rfind("HTTP/", 0) != 0) {
        return std::nullopt;
    }
    const std::size_t space = raw.find(' ');
    if (space == std::string::npos || space + 4 > raw.size()) {
        return std::nullopt;
    }
    char* stop = nullptr;
    const long status = std::strtol(raw.c_str() + space + 1, &stop, 10);
    if (status < 100 || status > 599) {
        return std::nullopt;
    }
    HttpResult result;
    result.status = static_cast<int>(status);
    std::size_t body = raw.find("\r\n\r\n");
    std::size_t skip = 4;
    if (body == std::string::npos) {
        body = raw.find("\n\n");
        skip = 2;
    }
    result.body = body == std::string::npos ? "" : raw.substr(body + skip);
    return result;
}

std::optional<UrlParts>
ParseHttpUrl(const std::string& url) {
    const std::string scheme = "http://";
    if (url.rfind(scheme, 0) != 0) {
        return std::nullopt;
    }
    std::string rest = url.substr(scheme.size());
    const std::size_t slash = rest.find('/');
    if (slash != std::string::npos) {
        rest = rest.substr(0, slash);
    }
    const std::size_t colon = rest.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
        return std::nullopt;
    }
    UrlParts parts;
    parts.host = rest.substr(0, colon);
    const std::string digits = rest.substr(colon + 1);
    char* stop = nullptr;
    const unsigned long port = std::strtoul(digits.c_str(), &stop, 10);
    if (stop != digits.c_str() + digits.size() || port == 0 ||
        port > 65535) {
        return std::nullopt;
    }
    parts.port = static_cast<std::uint16_t>(port);
    return parts;
}

}  // namespace moc::obs
