#ifndef MOC_OBS_MERGE_H_
#define MOC_OBS_MERGE_H_

/**
 * @file
 * Merging per-role observability artifacts onto one cluster timeline
 * (docs/OBSERVABILITY.md, "Cluster plane").
 *
 * Each process of a multi-process run (examples/cluster_procs under
 * tools/moc_launcher) exports its own journal, metrics, and trace, every
 * timestamp on its own steady clock. Two stamps make them mergeable:
 *
 *  - `clock_epoch_ns` (journal meta) — the local clock value wall_s counts
 *    from, so a relative event stamp becomes absolute local ns;
 *  - `clock_offset_ns` (run metadata, in every artifact) — the
 *    coordinator-relative offset estimated by the transport
 *    (net/clock_sync.h), so absolute local ns becomes coordinator ns.
 *
 * An event's coordinator-clock stamp is therefore
 * `clock_epoch_ns + t * 1e9 + clock_offset_ns`; a trace span's is
 * `start_ns + clock_offset_ns`. Merged outputs are re-zeroed to the
 * earliest stamp across inputs so `t` stays human-sized.
 *
 * Parsing is deliberately *tolerant*: a SIGKILL'd rank leaves a journal
 * whose last line may be torn mid-write, and a merge that refused such
 * files would lose exactly the evidence a post-mortem needs. Malformed
 * lines are skipped and counted (`skipped_lines`), never fatal. The strict
 * parser (obs/journal.h ParseEventsJsonl) remains the single-file
 * round-trip contract.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/critical_path.h"
#include "obs/journal.h"

namespace moc::obs {

/** "out/rank3.events.jsonl" -> "rank3": the basename up to its first dot,
    matching tools/moc_launcher's per-role artifact naming — the fallback
    role when a file's own metadata carries none. */
std::string RoleFromFilename(const std::string& path);

/** One per-role journal file, parsed with its rebase stamps. */
struct RoleEvents {
    std::string role;
    /** Coordinator clock minus this role's clock (run metadata). */
    std::int64_t clock_offset_ns = 0;
    /** Local clock value that wall_s counts from (journal meta). */
    std::int64_t clock_epoch_ns = 0;
    std::vector<JournalEvent> events;
    /** Malformed lines skipped (torn tails of killed processes). */
    std::size_t skipped_lines = 0;
    /** Whether a meta record was seen (absent in badly torn files). */
    bool has_meta = false;
};

/**
 * Tolerant journal parse. Uses the meta record's role when present,
 * @p fallback_role otherwise (typically derived from the file name).
 * Never throws on content: malformed lines are counted in skipped_lines.
 */
RoleEvents ParseRoleEventsJsonl(const std::string& text,
                                const std::string& fallback_role);

/** One journal event on the merged coordinator timeline. */
struct ClusterEvent {
    JournalEvent event;  ///< role filled from the producing file
    /** Coordinator-clock absolute stamp. */
    std::int64_t abs_ns = 0;
};

/** The merged, time-ordered cluster journal. */
struct MergedEvents {
    /** Ascending abs_ns (ties broken by role then seq). */
    std::vector<ClusterEvent> events;
    /** The earliest abs_ns across inputs — the merged zero point. */
    std::int64_t base_ns = 0;
    std::size_t skipped_lines = 0;
    std::size_t roles = 0;
};

/** Rebases and interleaves per-role journals onto one timeline. */
MergedEvents MergeRoleEvents(const std::vector<RoleEvents>& inputs);

/**
 * The merged journal as JSONL, line format identical to EventsJsonl()
 * (plus a `role` on every event), so `moc_cli report --events` reads a
 * cluster journal exactly like a single-process one. `t` is seconds since
 * base_ns on the coordinator clock.
 */
std::string ClusterEventsJsonl(const MergedEvents& merged);

/** One per-role Chrome trace, parsed with its rebase stamp. */
struct RoleSpans {
    std::string role;
    std::int64_t clock_offset_ns = 0;
    std::vector<FlightSpan> spans;
};

/**
 * Parses a ChromeTraceJson export plus its embedded metadata (role,
 * clock_offset_ns). Uses @p fallback_role when the metadata has none.
 * @throws std::invalid_argument on malformed JSON (traces are written
 *         atomically at exit; a torn trace is a real error).
 */
RoleSpans ParseRoleTrace(const std::string& text,
                         const std::string& fallback_role);

/**
 * All input spans rebased onto the coordinator clock (start_ns +=
 * clock_offset_ns), concatenated — ready for AnalyzeFlight, which then
 * reconstructs critical paths *across* processes.
 */
std::vector<FlightSpan> MergeRoleSpans(const std::vector<RoleSpans>& inputs);

/**
 * The merged spans as one Chrome trace: one pid per role (with
 * process_name metadata events), timestamps rebased and re-zeroed to the
 * earliest span, checkpoint context in args. Loads in chrome://tracing
 * as one cluster timeline.
 */
std::string MergedChromeTraceJson(const std::vector<RoleSpans>& inputs);

/**
 * Merges per-role metrics JSON files into one document:
 * `{"schema": "moc-cluster/1", "roles": {"<role>": <metrics>, ...}}`.
 * Unparsable inputs are skipped and counted in @p skipped (partial files
 * from killed ranks); pass nullptr to discard the count.
 */
std::string ClusterMetricsJson(
    const std::vector<std::pair<std::string, std::string>>& role_texts,
    std::size_t* skipped);

}  // namespace moc::obs

#endif  // MOC_OBS_MERGE_H_
