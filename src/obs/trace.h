#ifndef MOC_OBS_TRACE_H_
#define MOC_OBS_TRACE_H_

/**
 * @file
 * Scoped trace spans recorded into per-thread ring buffers.
 *
 * `TraceSpan` is an RAII timer: construction stamps a start time, the
 * destructor pushes a completed event into the calling thread's ring. When
 * the tracer is disabled (the default) a span costs one relaxed atomic
 * load and nothing is recorded, so instrumented hot paths stay near-free.
 *
 * Rings are fixed-capacity and overwrite the oldest events, bounding memory
 * no matter how long a run is; `Tracer::Collect()` merges every thread's
 * ring for export (see obs/export.h for the chrome://tracing emitter).
 * Span names/categories must be string literals (they are stored as
 * pointers, not copied).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace moc::obs {

/** One completed span. */
struct TraceEvent {
    const char* name = "";
    const char* category = "";
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
    /** Tracer-assigned dense thread id (stable per thread). */
    std::uint32_t tid = 0;
};

/** Fixed-capacity overwrite-oldest event buffer for one thread. */
class TraceRing {
  public:
    explicit TraceRing(std::size_t capacity, std::uint32_t tid);

    void Push(const TraceEvent& event);

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> Events() const;

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const;

    void Clear();

    std::uint32_t tid() const { return tid_; }

  private:
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::size_t capacity_;
    std::size_t head_ = 0;  ///< next write slot once the ring has wrapped
    bool full_ = false;
    std::uint64_t dropped_ = 0;
    std::uint32_t tid_;
};

/**
 * Process-wide trace collector. Owns one ring per thread that has ever
 * recorded a span; rings live for the process so thread-cached pointers
 * never dangle.
 */
class Tracer {
  public:
    static constexpr std::size_t kRingCapacity = 8192;

    static Tracer& Instance();

    void set_enabled(bool enabled) {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Records one completed event into the calling thread's ring. */
    void Record(const TraceEvent& event);

    /** Every thread's buffered events, sorted by start time. */
    std::vector<TraceEvent> Collect() const;

    /** Total events overwritten across all rings. */
    std::uint64_t TotalDropped() const;

    /** Empties every ring (rings themselves stay registered). */
    void Clear();

    /** Monotonic nanoseconds (steady clock). */
    static std::uint64_t NowNs();

  private:
    Tracer() = default;

    /** The calling thread's ring, registered on first use. */
    TraceRing& ThreadRing();

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<TraceRing>> rings_;
    std::atomic<bool> enabled_{false};
};

/**
 * RAII scoped timer; records into the thread's ring at scope exit when the
 * tracer was enabled at construction.
 */
class TraceSpan {
  public:
    explicit TraceSpan(const char* name, const char* category = "moc")
        : name_(name), category_(category),
          active_(Tracer::Instance().enabled()),
          start_ns_(active_ ? Tracer::NowNs() : 0) {}

    ~TraceSpan();

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    const char* name_;
    const char* category_;
    bool active_;
    std::uint64_t start_ns_;
};

}  // namespace moc::obs

#endif  // MOC_OBS_TRACE_H_
