#ifndef MOC_OBS_TRACE_H_
#define MOC_OBS_TRACE_H_

/**
 * @file
 * Scoped trace spans recorded into per-thread ring buffers.
 *
 * `TraceSpan` is an RAII timer: construction stamps a start time, the
 * destructor pushes a completed event into the calling thread's ring. When
 * the tracer is disabled (the default) a span costs one relaxed atomic
 * load and nothing is recorded, so instrumented hot paths stay near-free.
 *
 * Rings are fixed-capacity and overwrite the oldest events, bounding memory
 * no matter how long a run is; `Tracer::Collect()` merges every thread's
 * ring for export (see obs/export.h for the chrome://tracing emitter).
 * Span names/categories must be string literals (they are stored as
 * pointers, not copied).
 *
 * Cross-rank correlation: a `TraceContext` names the checkpoint event a
 * span belongs to (generation, iteration, rank, phase). It is installed
 * per-thread with `TraceContextScope` and carried across thread hops by the
 * checkpoint stack (triple-buffer slots, persist-pipeline jobs), so the
 * merged rings can be re-assembled into per-generation causal DAGs
 * (obs/critical_path.h) — the flight recorder of docs/OBSERVABILITY.md.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace moc::obs {

/**
 * Identity of the checkpoint event a span or journal record belongs to.
 * Default-constructed means "no checkpoint context" (nothing is stamped).
 * `phase` must be a string literal (stored as a pointer, like span names).
 */
struct TraceContext {
    /** Cluster checkpoint generation id (0 = none). */
    std::uint64_t generation = 0;
    /** Training iteration the event belongs to. */
    std::uint64_t iteration = 0;
    /** Cluster rank (-1 = not rank-scoped). */
    std::int32_t rank = -1;
    /** Checkpoint phase: "serialize", "snapshot", "persist", "verify",
        "seal", "recover", ... (empty = none). */
    const char* phase = "";

    /** True when any identifying field is set. */
    bool Active() const {
        return generation != 0 || rank >= 0 || phase[0] != '\0';
    }
};

/** The calling thread's current context (inactive when none installed). */
const TraceContext& CurrentTraceContext();

/**
 * RAII: installs @p ctx as the calling thread's trace context and restores
 * the previous one at scope exit. Construct *before* the TraceSpans that
 * should be stamped with it (members destruct in reverse order).
 */
class TraceContextScope {
  public:
    explicit TraceContextScope(const TraceContext& ctx);
    ~TraceContextScope();

    TraceContextScope(const TraceContextScope&) = delete;
    TraceContextScope& operator=(const TraceContextScope&) = delete;

  private:
    TraceContext saved_;
};

/** One completed span. */
struct TraceEvent {
    const char* name = "";
    const char* category = "";
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
    /** Tracer-assigned dense thread id (stable per thread). */
    std::uint32_t tid = 0;
    /** Checkpoint-event identity (see TraceContext); stamped at record. */
    std::uint64_t generation = 0;
    std::uint64_t iteration = 0;
    std::int32_t rank = -1;
    const char* phase = "";
};

/** Fixed-capacity overwrite-oldest event buffer for one thread. */
class TraceRing {
  public:
    explicit TraceRing(std::size_t capacity, std::uint32_t tid);

    void Push(const TraceEvent& event);

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> Events() const;

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const;

    void Clear();

    std::uint32_t tid() const { return tid_; }

  private:
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::size_t capacity_;
    std::size_t head_ = 0;  ///< next write slot once the ring has wrapped
    bool full_ = false;
    std::uint64_t dropped_ = 0;
    std::uint32_t tid_;
};

/**
 * Process-wide trace collector. Owns one ring per thread that has ever
 * recorded a span; rings live for the process so thread-cached pointers
 * never dangle.
 */
class Tracer {
  public:
    static constexpr std::size_t kRingCapacity = 8192;

    static Tracer& Instance();

    void set_enabled(bool enabled) {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Records one completed event into the calling thread's ring. */
    void Record(const TraceEvent& event);

    /** Every thread's buffered events, sorted by start time. */
    std::vector<TraceEvent> Collect() const;

    /** Total events overwritten across all rings. */
    std::uint64_t TotalDropped() const;

    /** Empties every ring (rings themselves stay registered). */
    void Clear();

    /** Monotonic nanoseconds (steady clock). */
    static std::uint64_t NowNs();

  private:
    Tracer() = default;

    /** The calling thread's ring, registered on first use. */
    TraceRing& ThreadRing();

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<TraceRing>> rings_;
    std::atomic<bool> enabled_{false};
};

/**
 * RAII scoped timer; records into the thread's ring at scope exit when the
 * tracer was enabled at construction.
 */
class TraceSpan {
  public:
    explicit TraceSpan(const char* name, const char* category = "moc")
        : name_(name), category_(category),
          active_(Tracer::Instance().enabled()),
          start_ns_(active_ ? Tracer::NowNs() : 0) {}

    ~TraceSpan();

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    const char* name_;
    const char* category_;
    bool active_;
    std::uint64_t start_ns_;
};

}  // namespace moc::obs

#endif  // MOC_OBS_TRACE_H_
