#ifndef MOC_OBS_PROMETHEUS_H_
#define MOC_OBS_PROMETHEUS_H_

/**
 * @file
 * Prometheus text-format (exposition format 0.0.4) exporter for the metrics
 * registry, alongside the JSON one in obs/export.h:
 *
 *  - counters/gauges become `moc_<name>` samples (dots -> underscores);
 *  - histograms become the conventional `_bucket{le=...}` (cumulative),
 *    `_sum`, and `_count` series;
 *  - run metadata becomes a `moc_run_info{...} 1` info-style gauge;
 *  - the per-expert telemetry grid becomes `moc_expert_*` samples labelled
 *    `{layer="m",expert="e"}`.
 *
 * ParsePrometheusText() reads the format back for the round-trip tests and
 * for scraping our own artifacts.
 */

#include <map>
#include <string>
#include <vector>

namespace moc::obs {

/** One parsed exposition line: `name{labels} value`. */
struct PromSample {
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0.0;
};

/** `ckpt.persist_bytes` -> `moc_ckpt_persist_bytes`. */
std::string PromMetricName(const std::string& name);

/**
 * Label-value escaping per the exposition format (\\, \", \n). Every
 * labelled emission in MetricsPrometheus() routes its values through this
 * — including the cluster-health `moc_rank_*` labels, whose phase and
 * death-cause strings arrive over the wire from other processes.
 */
std::string PromEscapeLabel(const std::string& s);

/** The full registry (and expert grid) in Prometheus text format. */
std::string MetricsPrometheus();

/** Writes MetricsPrometheus() to @p path, creating parent directories. */
bool WriteMetricsPrometheus(const std::string& path);

/**
 * Parses Prometheus text format: comments/blank lines skipped, one
 * PromSample per sample line, in file order.
 * @throws std::invalid_argument on lines that are not valid samples.
 */
std::vector<PromSample> ParsePrometheusText(const std::string& text);

}  // namespace moc::obs

#endif  // MOC_OBS_PROMETHEUS_H_
